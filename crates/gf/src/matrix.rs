//! Row-major matrices over GF(2^8).
//!
//! The MDS encoder in `soda-rs-code` is a matrix-vector product of an `n × k`
//! encoding matrix with the `k` data shards, and the erasure decoder inverts a
//! `k × k` submatrix of surviving rows. This module provides exactly those
//! operations, together with the Vandermonde and Cauchy constructions whose
//! square submatrices are guaranteed invertible (the MDS property).

use crate::Gf256;
use std::fmt;

/// Errors produced by matrix operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix is singular and cannot be inverted.
    Singular,
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// Human-readable description of the mismatching operation.
        context: &'static str,
    },
    /// A Cauchy matrix construction was asked for overlapping index sets.
    InvalidConstruction(&'static str),
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch in {context}")
            }
            MatrixError::InvalidConstruction(msg) => write!(f, "invalid construction: {msg}"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows have uneven lengths.
    pub fn from_rows(rows: Vec<Vec<Gf256>>) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in &rows {
            assert_eq!(row.len(), ncols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Builds a matrix from nested byte rows (convenience for tests).
    pub fn from_bytes(rows: &[&[u8]]) -> Self {
        Matrix::from_rows(
            rows.iter()
                .map(|r| r.iter().map(|&b| Gf256::new(b)).collect())
                .collect(),
        )
    }

    /// A (non-systematic) `rows × cols` Vandermonde matrix: entry `(i, j)` is
    /// `α_i^j` where `α_i` is the field element with value `i`.
    ///
    /// Every square submatrix formed by choosing distinct rows is invertible as
    /// long as the evaluation points are distinct, which holds for
    /// `rows <= 256`.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= 256,
            "at most 256 distinct evaluation points in GF(2^8)"
        );
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let x = Gf256::new(i as u8);
            for j in 0..cols {
                m[(i, j)] = x.pow(j as u64);
            }
        }
        m
    }

    /// A Cauchy matrix with entry `(i, j) = 1 / (x_i + y_j)`.
    ///
    /// Requires the `x` and `y` sets to be disjoint and each internally
    /// distinct; then every square submatrix is invertible.
    pub fn cauchy(xs: &[Gf256], ys: &[Gf256]) -> Result<Self, MatrixError> {
        for (i, x) in xs.iter().enumerate() {
            if xs[i + 1..].contains(x) {
                return Err(MatrixError::InvalidConstruction("duplicate x point"));
            }
            if ys.contains(x) {
                return Err(MatrixError::InvalidConstruction("x and y sets overlap"));
            }
        }
        for (j, y) in ys.iter().enumerate() {
            if ys[j + 1..].contains(y) {
                return Err(MatrixError::InvalidConstruction("duplicate y point"));
            }
        }
        let mut m = Matrix::zero(xs.len(), ys.len());
        for (i, &x) in xs.iter().enumerate() {
            for (j, &y) in ys.iter().enumerate() {
                m[(i, j)] = (x + y).inverse();
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    pub fn row(&self, i: usize) -> &[Gf256] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns a new matrix consisting of the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Swaps two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Matrix multiplication.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                context: "matrix multiply",
            });
        }
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self[(i, l)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(l, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector multiplication.
    pub fn mul_vec(&self, v: &[Gf256]) -> Result<Vec<Gf256>, MatrixError> {
        if self.cols != v.len() {
            return Err(MatrixError::DimensionMismatch {
                context: "matrix-vector multiply",
            });
        }
        let mut out = vec![Gf256::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Gf256::ZERO;
            for (j, &x) in v.iter().enumerate() {
                acc += self[(i, j)] * x;
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Applies the matrix to `k` equal-length byte shards, producing
    /// `self.rows()` output shards: `out[i] = Σ_j self[i][j] * shards[j]`.
    ///
    /// This is the bulk-data path used by the Reed–Solomon encoder; it avoids
    /// materializing per-byte `Gf256` vectors and runs on the wide
    /// split-nibble kernel ([`crate::mul_slice_xor`]).
    pub fn apply_to_shards(&self, shards: &[&[u8]]) -> Result<Vec<Vec<u8>>, MatrixError> {
        if shards.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "apply_to_shards",
            });
        }
        let shard_len = shards.first().map_or(0, |s| s.len());
        if shards.iter().any(|s| s.len() != shard_len) {
            return Err(MatrixError::DimensionMismatch {
                context: "apply_to_shards: unequal shard lengths",
            });
        }
        let mut out = vec![vec![0u8; shard_len]; self.rows];
        for i in 0..self.rows {
            for (j, shard) in shards.iter().enumerate() {
                crate::mul_slice_xor(self[(i, j)], shard, &mut out[i]);
            }
        }
        Ok(out)
    }

    /// Applies a single row of the matrix to `k` equal-length byte shards,
    /// producing one output shard: `out = Σ_j self[row][j] * shards[j]`.
    ///
    /// This is the `Φ_i(v)` fast path: encoding only one server's coded
    /// element (server state init, repair re-encoding) without computing the
    /// other `n − 1` rows.
    pub fn apply_row_to_shards(
        &self,
        row: usize,
        shards: &[&[u8]],
    ) -> Result<Vec<u8>, MatrixError> {
        if shards.len() != self.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "apply_row_to_shards",
            });
        }
        let shard_len = shards.first().map_or(0, |s| s.len());
        if shards.iter().any(|s| s.len() != shard_len) {
            return Err(MatrixError::DimensionMismatch {
                context: "apply_row_to_shards: unequal shard lengths",
            });
        }
        let mut out = vec![0u8; shard_len];
        for (j, shard) in shards.iter().enumerate() {
            crate::mul_slice_xor(self[(row, j)], shard, &mut out);
        }
        Ok(out)
    }

    /// Gauss–Jordan inversion. Returns [`MatrixError::Singular`] if the matrix
    /// has no inverse, and a dimension error if it is not square.
    pub fn inverse(&self) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::DimensionMismatch {
                context: "inverse of non-square matrix",
            });
        }
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find pivot.
            let pivot_row = (col..n).find(|&r| !work[(r, col)].is_zero());
            let pivot_row = match pivot_row {
                Some(r) => r,
                None => return Err(MatrixError::Singular),
            };
            work.swap_rows(col, pivot_row);
            inv.swap_rows(col, pivot_row);
            // Normalize pivot row.
            let pivot_inv = work[(col, col)].inverse();
            for j in 0..n {
                work[(col, j)] *= pivot_inv;
                inv[(col, j)] *= pivot_inv;
            }
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work[(r, col)];
                if factor.is_zero() {
                    continue;
                }
                for j in 0..n {
                    let w = work[(col, j)];
                    let v = inv[(col, j)];
                    work[(r, j)] -= factor * w;
                    inv[(r, j)] -= factor * v;
                }
            }
        }
        Ok(inv)
    }

    /// Rank of the matrix, computed by Gaussian elimination on a copy.
    pub fn rank(&self) -> usize {
        let mut work = self.clone();
        let mut rank = 0;
        let mut pivot_col = 0;
        while rank < work.rows && pivot_col < work.cols {
            let pivot_row = (rank..work.rows).find(|&r| !work[(r, pivot_col)].is_zero());
            let pivot_row = match pivot_row {
                Some(r) => r,
                None => {
                    pivot_col += 1;
                    continue;
                }
            };
            work.swap_rows(rank, pivot_row);
            let pivot_inv = work[(rank, pivot_col)].inverse();
            for j in 0..work.cols {
                work[(rank, j)] *= pivot_inv;
            }
            for r in 0..work.rows {
                if r == rank {
                    continue;
                }
                let factor = work[(r, pivot_col)];
                if factor.is_zero() {
                    continue;
                }
                for j in 0..work.cols {
                    let w = work[(rank, j)];
                    work[(r, j)] -= factor * w;
                }
            }
            rank += 1;
            pivot_col += 1;
        }
        rank
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Gf256 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Gf256 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:02x} ", self[(i, j)].value())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything_is_identity_map() {
        let m = Matrix::from_bytes(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        let id = Matrix::identity(3);
        assert_eq!(id.mul(&m).unwrap(), m);
        assert_eq!(m.mul(&id).unwrap(), m);
    }

    #[test]
    fn mul_dimension_mismatch_is_error() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        assert!(matches!(
            a.mul(&b),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn inverse_round_trip_small() {
        let m = Matrix::from_bytes(&[&[1, 2], &[3, 4]]);
        let inv = m.inverse().unwrap();
        assert_eq!(m.mul(&inv).unwrap(), Matrix::identity(2));
        assert_eq!(inv.mul(&m).unwrap(), Matrix::identity(2));
    }

    #[test]
    fn inverse_of_singular_matrix_fails() {
        // Two identical rows -> singular.
        let m = Matrix::from_bytes(&[&[1, 2], &[1, 2]]);
        assert_eq!(m.inverse(), Err(MatrixError::Singular));
    }

    #[test]
    fn inverse_of_non_square_fails() {
        let m = Matrix::zero(2, 3);
        assert!(matches!(
            m.inverse(),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn vandermonde_square_submatrices_invertible() {
        // MDS property backbone: any k rows of an n x k Vandermonde matrix with
        // distinct evaluation points form an invertible matrix.
        let n = 10;
        let k = 4;
        let v = Matrix::vandermonde(n, k);
        let row_sets: [&[usize]; 4] = [&[0, 1, 2, 3], &[0, 2, 5, 9], &[6, 7, 8, 9], &[1, 3, 5, 7]];
        for rows in row_sets {
            let sub = v.select_rows(rows);
            let inv = sub
                .inverse()
                .expect("Vandermonde submatrix must be invertible");
            assert_eq!(sub.mul(&inv).unwrap(), Matrix::identity(k));
        }
    }

    #[test]
    fn cauchy_square_submatrices_invertible() {
        let xs: Vec<Gf256> = (0..6u8).map(Gf256::new).collect();
        let ys: Vec<Gf256> = (6..10u8).map(Gf256::new).collect();
        let c = Matrix::cauchy(&xs, &ys).unwrap();
        assert_eq!(c.rows(), 6);
        assert_eq!(c.cols(), 4);
        let sub = c.select_rows(&[0, 2, 3, 5]);
        assert!(sub.inverse().is_ok());
    }

    #[test]
    fn cauchy_rejects_overlapping_points() {
        let xs = [Gf256::new(1), Gf256::new(2)];
        let ys = [Gf256::new(2), Gf256::new(3)];
        assert!(matches!(
            Matrix::cauchy(&xs, &ys),
            Err(MatrixError::InvalidConstruction(_))
        ));
    }

    #[test]
    fn cauchy_rejects_duplicate_points() {
        let xs = [Gf256::new(1), Gf256::new(1)];
        let ys = [Gf256::new(3)];
        assert!(Matrix::cauchy(&xs, &ys).is_err());
        let xs = [Gf256::new(1)];
        let ys = [Gf256::new(3), Gf256::new(3)];
        assert!(Matrix::cauchy(&xs, &ys).is_err());
    }

    #[test]
    fn mul_vec_matches_mul_with_column_matrix() {
        let m = Matrix::from_bytes(&[&[1, 2, 3], &[4, 5, 6]]);
        let v = vec![Gf256::new(7), Gf256::new(8), Gf256::new(9)];
        let out = m.mul_vec(&v).unwrap();
        let col = Matrix::from_rows(v.iter().map(|&x| vec![x]).collect());
        let expected = m.mul(&col).unwrap();
        assert_eq!(out[0], expected[(0, 0)]);
        assert_eq!(out[1], expected[(1, 0)]);
    }

    #[test]
    fn mul_vec_dimension_mismatch() {
        let m = Matrix::zero(2, 3);
        assert!(m.mul_vec(&[Gf256::ONE]).is_err());
    }

    #[test]
    fn apply_to_shards_matches_per_byte_mul_vec() {
        let m = Matrix::vandermonde(5, 3);
        let shards: Vec<Vec<u8>> = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10, 11, 12]];
        let shard_refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let out = m.apply_to_shards(&shard_refs).unwrap();
        assert_eq!(out.len(), 5);
        for byte_idx in 0..4 {
            let v: Vec<Gf256> = shards.iter().map(|s| Gf256::new(s[byte_idx])).collect();
            let expected = m.mul_vec(&v).unwrap();
            for (i, row) in out.iter().enumerate() {
                assert_eq!(Gf256::new(row[byte_idx]), expected[i]);
            }
        }
    }

    #[test]
    fn apply_row_to_shards_matches_full_apply() {
        let m = Matrix::vandermonde(5, 3);
        let shards: Vec<Vec<u8>> = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10, 11, 12]];
        let shard_refs: Vec<&[u8]> = shards.iter().map(|s| s.as_slice()).collect();
        let full = m.apply_to_shards(&shard_refs).unwrap();
        for (i, expected) in full.iter().enumerate() {
            assert_eq!(&m.apply_row_to_shards(i, &shard_refs).unwrap(), expected);
        }
        let ragged: Vec<&[u8]> = vec![&[1, 2], &[3]];
        assert!(m.apply_row_to_shards(0, &ragged).is_err());
        assert!(m.apply_row_to_shards(0, &shard_refs[..2]).is_err());
    }

    #[test]
    fn apply_to_shards_rejects_ragged_input() {
        let m = Matrix::vandermonde(3, 2);
        let a = vec![1u8, 2, 3];
        let b = vec![1u8, 2];
        assert!(m.apply_to_shards(&[&a, &b]).is_err());
    }

    #[test]
    fn rank_of_vandermonde_is_full() {
        let v = Matrix::vandermonde(8, 5);
        assert_eq!(v.rank(), 5);
        assert_eq!(Matrix::identity(4).rank(), 4);
        assert_eq!(Matrix::zero(3, 3).rank(), 0);
    }

    #[test]
    fn select_rows_and_row_access() {
        let m = Matrix::from_bytes(&[&[1, 2], &[3, 4], &[5, 6]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[Gf256::new(5), Gf256::new(6)]);
        assert_eq!(s.row(1), &[Gf256::new(1), Gf256::new(2)]);
    }

    #[test]
    fn swap_rows_same_index_is_noop() {
        let mut m = Matrix::from_bytes(&[&[1, 2], &[3, 4]]);
        let before = m.clone();
        m.swap_rows(1, 1);
        assert_eq!(m, before);
    }

    #[test]
    fn random_invertible_matrices_round_trip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut found = 0;
        while found < 20 {
            let n = rng.gen_range(1..=6);
            let mut m = Matrix::zero(n, n);
            for i in 0..n {
                for j in 0..n {
                    m[(i, j)] = Gf256::new(rng.gen());
                }
            }
            if let Ok(inv) = m.inverse() {
                assert_eq!(m.mul(&inv).unwrap(), Matrix::identity(n));
                found += 1;
            }
        }
    }
}
