//! Galois-field arithmetic for MDS erasure codes.
//!
//! This crate provides the algebraic substrate used by the Reed–Solomon
//! implementation in `soda-rs-code`:
//!
//! * [`Gf256`] — the finite field GF(2^8) with the AES/Rijndael-compatible
//!   primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), implemented with
//!   precomputed exponential/logarithm tables.
//! * [`mul_slice`] / [`mul_slice_xor`] / [`xor_slice`] — wide slice kernels
//!   over split 4-bit-nibble lookup tables, processing eight bytes per
//!   iteration. These are the bulk-data hot path; the per-byte loops on
//!   [`Gf256`] remain as the reference implementation.
//! * [`Poly`] — dense polynomials over GF(2^8) (addition, multiplication,
//!   Euclidean division, evaluation, formal derivative). Used by the
//!   error-correcting decoder (syndromes, Berlekamp–Massey, Chien search,
//!   Forney's formula).
//! * [`Matrix`] — row-major matrices over GF(2^8) with Gauss–Jordan inversion
//!   and Vandermonde/Cauchy constructors. Used by the systematic encoder and the
//!   erasure-only decoder.
//!
//! The paper ("Storage-Optimized Data-Atomic Algorithms…", Konwar et al.)
//! abstracts the code as an encoder Φ and decoders Φ⁻¹ / Φ⁻¹_err over an
//! `[n, k]` MDS code; everything in this crate exists to realize those three
//! functions concretely without external dependencies.
//!
//! # Example
//!
//! ```
//! use soda_gf::Gf256;
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xCA);
//! let p = a * b;
//! assert_eq!(p / b, a);
//! assert_eq!(a + a, Gf256::ZERO); // characteristic 2
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod gf256;
mod kernel;
mod matrix;
mod poly;

pub use gf256::Gf256;
pub use kernel::{mul_slice, mul_slice_xor, xor_slice};
pub use matrix::{Matrix, MatrixError};
pub use poly::Poly;
