//! SODAerr's byzantine adversary: in-flight corruption of coded elements.
//!
//! Section VI's threat model is that up to `e` servers may serve *corrupted
//! coded elements* to readers without noticing — the tags, acknowledgements
//! and dispersal metadata they produce stay correct. The disk-level variant
//! of this ([`crate::DiskFaultModel`]) corrupts only elements read from the
//! server's local disk; the network-level variant here corrupts **every**
//! coded element a designated server sends to a reader, including relays of
//! concurrent writes, which is the strongest adversary the SODAerr decoder
//! must survive.
//!
//! The hook plugs into the simulator's delivery path: mark the byzantine
//! servers in a [`soda_simnet::NetFaultPlan`] (via
//! `NetFaultPlan::with_corrupt_sender`) and install
//! [`coded_element_corruptor`] with
//! [`soda_simnet::Simulation::set_corruption_hook`]. The
//! `soda-registry` facade wires both up from
//! `ClusterBuilder::with_byzantine_servers`.

use crate::messages::SodaMsg;
use soda_simnet::{CorruptionHook, ProcessId};
use std::collections::BTreeSet;

/// Flips bits of a coded element's payload, mirroring
/// [`crate::DiskFaultModel::Always`] so disk-level and network-level
/// corruption are indistinguishable to the decoder.
pub(crate) fn corrupt_element_data(data: &mut [u8]) {
    for byte in data.iter_mut() {
        *byte ^= 0x5A;
    }
    // Perturb the first byte as well so even payloads that are fixed points
    // of the XOR pattern (and empty-value edge cases) change shape.
    if let Some(first) = data.first_mut() {
        *first = first.wrapping_add(1);
    }
}

/// A [`CorruptionHook`] that corrupts the [`SodaMsg::CodedToReader`] payloads
/// sent by the given server ranks and leaves every other message intact —
/// exactly the messages SODAerr's error budget `e` is provisioned against.
/// Write dispersals (`MdValue`) and all metadata are deliberately untouched:
/// corrupting those models a stronger adversary than the paper's, under which
/// no storage-optimal protocol can be correct.
pub fn coded_element_corruptor(ranks: BTreeSet<usize>) -> CorruptionHook<SodaMsg> {
    Box::new(move |from: ProcessId, _to, msg: &mut SodaMsg, _rng| {
        if !ranks.contains(&from.index()) {
            return false;
        }
        match msg {
            // Empty payloads (coded elements of an empty v0) have no bits to
            // flip; report them unmutated so the corruption counter stays
            // honest.
            SodaMsg::CodedToReader { element, .. } if !element.data.is_empty() => {
                corrupt_element_data(element.data.make_mut());
                true
            }
            _ => false,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::OpId;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;
    use soda_protocol::{value_from, Tag};
    use soda_rs_code::CodedElement;

    fn element() -> CodedElement {
        CodedElement::new(3, vec![1, 2, 3, 4])
    }

    #[test]
    fn corrupts_only_coded_elements_of_designated_ranks() {
        let mut hook = coded_element_corruptor([2usize].into_iter().collect());
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let op = OpId::new(ProcessId(9), 1);
        let tag = Tag::new(1, ProcessId(9));

        let mut msg = SodaMsg::CodedToReader {
            op,
            tag,
            element: element(),
        };
        assert!(hook(ProcessId(2), ProcessId(9), &mut msg, &mut rng));
        match &msg {
            SodaMsg::CodedToReader { element: e, .. } => {
                assert_ne!(e.data, vec![1, 2, 3, 4], "payload must change");
                assert_eq!(e.index, 3, "the element index is metadata: untouched");
            }
            _ => unreachable!(),
        }

        // Same message from a non-designated rank: untouched.
        let mut msg = SodaMsg::CodedToReader {
            op,
            tag,
            element: element(),
        };
        assert!(!hook(ProcessId(1), ProcessId(9), &mut msg, &mut rng));

        // Non-element messages from the designated rank: untouched.
        let mut msg = SodaMsg::WriteGetResp { op, tag };
        assert!(!hook(ProcessId(2), ProcessId(9), &mut msg, &mut rng));

        // Empty elements cannot be mutated and must not be reported as
        // corrupted.
        let mut msg = SodaMsg::CodedToReader {
            op,
            tag,
            element: CodedElement::new(2, Vec::new()),
        };
        assert!(!hook(ProcessId(2), ProcessId(9), &mut msg, &mut rng));
        let mut msg = SodaMsg::InvokeWrite(value_from(vec![1]));
        assert!(!hook(ProcessId(2), ProcessId(9), &mut msg, &mut rng));
    }

    #[test]
    fn corruption_changes_empty_and_fixed_point_payloads() {
        let mut data = vec![0x5Au8];
        let before = data.clone();
        corrupt_element_data(&mut data);
        assert_ne!(data, before);
        let mut empty: Vec<u8> = Vec::new();
        corrupt_element_data(&mut empty);
        assert!(empty.is_empty(), "empty payloads stay empty but harmless");
    }
}
