//! Cluster harness: builds a complete SODA / SODAerr deployment inside the
//! discrete-event simulator, injects client operations, and exposes the state
//! needed by tests and experiments (operation histories, storage occupancy,
//! message statistics).

use crate::config::{DiskFaultModel, SodaConfig};
use crate::messages::SodaMsg;
use crate::reader::ReaderProcess;
use crate::record::OpRecord;
use crate::server::ServerProcess;
use crate::writer::WriterProcess;
use soda_protocol::{value_from, Layout};
use soda_simnet::{NetworkConfig, ProcessId, RunOutcome, SimTime, Simulation, Stats};
use std::sync::Arc;

/// Configuration of a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of servers.
    pub n: usize,
    /// Number of server crashes to tolerate.
    pub f: usize,
    /// Error budget `e` (0 selects plain SODA, > 0 selects SODAerr).
    pub e: usize,
    /// Number of writer clients.
    pub num_writers: usize,
    /// Number of reader clients.
    pub num_readers: usize,
    /// RNG seed controlling message delays (and thus the interleaving).
    pub seed: u64,
    /// Network delay configuration.
    pub network: NetworkConfig,
    /// The initial object value `v0`.
    pub initial_value: Vec<u8>,
    /// Ranks of servers whose local disks silently corrupt elements
    /// (SODAerr's threat model).
    pub faulty_disks: Vec<usize>,
    /// Ablation switch: disable the relaying of concurrent writes to
    /// registered readers at every server (default `true` = paper behaviour).
    pub relay_enabled: bool,
}

impl ClusterConfig {
    /// A cluster of `n` servers tolerating `f` crashes, with one writer and
    /// one reader, uniform random delays in `[1, 10]` and an empty initial
    /// value.
    pub fn new(n: usize, f: usize) -> Self {
        ClusterConfig {
            n,
            f,
            e: 0,
            num_writers: 1,
            num_readers: 1,
            seed: 0,
            network: NetworkConfig::uniform(10),
            initial_value: Vec::new(),
            faulty_disks: Vec::new(),
            relay_enabled: true,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of writer and reader clients.
    pub fn with_clients(mut self, writers: usize, readers: usize) -> Self {
        self.num_writers = writers;
        self.num_readers = readers;
        self
    }

    /// Selects SODAerr with the given error budget.
    pub fn with_error_tolerance(mut self, e: usize) -> Self {
        self.e = e;
        self
    }

    /// Sets the network delay model.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Sets the initial object value `v0`.
    pub fn with_initial_value(mut self, value: Vec<u8>) -> Self {
        self.initial_value = value;
        self
    }

    /// Marks the given server ranks as having error-prone local disks.
    pub fn with_faulty_disks(mut self, ranks: Vec<usize>) -> Self {
        self.faulty_disks = ranks;
        self
    }

    /// Disables concurrent-write relaying at every server (ablation only).
    pub fn with_relay_disabled(mut self) -> Self {
        self.relay_enabled = false;
        self
    }
}

/// A complete simulated deployment: `n` servers plus writer and reader
/// clients, all registered with one [`Simulation`].
pub struct SodaCluster {
    sim: Simulation<SodaMsg>,
    config: Arc<SodaConfig>,
    servers: Vec<ProcessId>,
    writers: Vec<ProcessId>,
    readers: Vec<ProcessId>,
}

impl SodaCluster {
    /// Builds the cluster described by `cfg`.
    pub fn build(cfg: ClusterConfig) -> Self {
        let mut sim = Simulation::new(cfg.seed, cfg.network.clone());
        // Servers are registered first so that rank i has ProcessId(i).
        let server_ids: Vec<ProcessId> = (0..cfg.n as u32).map(ProcessId).collect();
        let layout = Layout::new(server_ids, cfg.f);
        let config = if cfg.e == 0 {
            SodaConfig::soda(layout)
        } else {
            SodaConfig::soda_err(layout, cfg.e)
        };
        let initial = value_from(cfg.initial_value.clone());
        let mut servers = Vec::with_capacity(cfg.n);
        for rank in 0..cfg.n {
            let mut server = ServerProcess::new(config.clone(), rank, &initial);
            if cfg.faulty_disks.contains(&rank) {
                server = server.with_disk_fault(DiskFaultModel::Always);
            }
            if !cfg.relay_enabled {
                server = server.with_relay_disabled();
            }
            let id = sim.add_process(Box::new(server));
            debug_assert_eq!(id.index(), rank);
            servers.push(id);
        }
        let mut writers = Vec::with_capacity(cfg.num_writers);
        for _ in 0..cfg.num_writers {
            // The process id is known before insertion because ids are dense.
            let id = ProcessId(sim.num_processes() as u32);
            let writer = WriterProcess::new(config.clone(), id);
            let actual = sim.add_process(Box::new(writer));
            debug_assert_eq!(actual, id);
            writers.push(id);
        }
        let mut readers = Vec::with_capacity(cfg.num_readers);
        for _ in 0..cfg.num_readers {
            let id = ProcessId(sim.num_processes() as u32);
            let reader = ReaderProcess::new(config.clone(), id);
            let actual = sim.add_process(Box::new(reader));
            debug_assert_eq!(actual, id);
            readers.push(id);
        }
        SodaCluster {
            sim,
            config,
            servers,
            writers,
            readers,
        }
    }

    /// The shared protocol configuration.
    pub fn soda_config(&self) -> &Arc<SodaConfig> {
        &self.config
    }

    /// Server process ids, by rank.
    pub fn servers(&self) -> &[ProcessId] {
        &self.servers
    }

    /// Writer client process ids.
    pub fn writers(&self) -> &[ProcessId] {
        &self.writers
    }

    /// Reader client process ids.
    pub fn readers(&self) -> &[ProcessId] {
        &self.readers
    }

    /// The underlying simulation (read access).
    pub fn sim(&self) -> &Simulation<SodaMsg> {
        &self.sim
    }

    /// The underlying simulation (mutable access, e.g. for custom scheduling).
    pub fn sim_mut(&mut self) -> &mut Simulation<SodaMsg> {
        &mut self.sim
    }

    /// Asks writer `writer` to write `value` now (queued if it is busy).
    pub fn invoke_write(&mut self, writer: ProcessId, value: Vec<u8>) {
        self.sim
            .send_external(writer, SodaMsg::InvokeWrite(value_from(value)));
    }

    /// Asks writer `writer` to write `value` at simulated time `at`.
    pub fn invoke_write_at(&mut self, at: SimTime, writer: ProcessId, value: Vec<u8>) {
        self.sim
            .send_external_at(at, writer, SodaMsg::InvokeWrite(value_from(value)));
    }

    /// Asks reader `reader` to read now (queued if it is busy).
    pub fn invoke_read(&mut self, reader: ProcessId) {
        self.sim.send_external(reader, SodaMsg::InvokeRead);
    }

    /// Asks reader `reader` to read at simulated time `at`.
    pub fn invoke_read_at(&mut self, at: SimTime, reader: ProcessId) {
        self.sim.send_external_at(at, reader, SodaMsg::InvokeRead);
    }

    /// Crashes the server with the given rank at time `at`.
    pub fn crash_server_at(&mut self, at: SimTime, rank: usize) {
        let id = self.servers[rank];
        self.sim.schedule_crash(at, id);
    }

    /// Crashes an arbitrary process (e.g. a client) at time `at`.
    pub fn crash_process_at(&mut self, at: SimTime, id: ProcessId) {
        self.sim.schedule_crash(at, id);
    }

    /// Runs the simulation until no events remain.
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.sim.run_to_quiescence()
    }

    /// Runs the simulation until the given deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.sim.run_until(deadline)
    }

    /// Message statistics accumulated so far.
    pub fn stats(&self) -> Stats {
        self.sim.stats()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// All operations completed by all clients, ordered by completion time.
    pub fn completed_ops(&self) -> Vec<OpRecord> {
        let mut ops = Vec::new();
        for &w in &self.writers {
            if let Some(writer) = self.sim.process_as::<WriterProcess>(w) {
                ops.extend(writer.completed_ops().iter().cloned());
            }
        }
        for &r in &self.readers {
            if let Some(reader) = self.sim.process_as::<ReaderProcess>(r) {
                ops.extend(reader.completed_ops().iter().cloned());
            }
        }
        ops.sort_by_key(|op| (op.completed_at, op.op));
        ops
    }

    /// Writes invoked but not completed (the writer is mid-operation, was
    /// crashed mid-operation, or was starved by a network adversary).
    /// Adversarial harnesses need these to close the operation history
    /// before atomicity checking.
    pub fn pending_writes(&self) -> Vec<crate::record::PendingWrite> {
        self.writers
            .iter()
            .filter_map(|&w| self.sim.process_as::<WriterProcess>(w))
            .filter_map(|writer| writer.in_flight())
            .collect()
    }

    /// Typed access to a server's state by rank.
    pub fn server_state(&self, rank: usize) -> &ServerProcess {
        self.sim
            .process_as::<ServerProcess>(self.servers[rank])
            .expect("server process exists")
    }

    /// Typed access to a writer's state.
    pub fn writer_state(&self, id: ProcessId) -> &WriterProcess {
        self.sim
            .process_as::<WriterProcess>(id)
            .expect("writer process exists")
    }

    /// Typed access to a reader's state.
    pub fn reader_state(&self, id: ProcessId) -> &ReaderProcess {
        self.sim
            .process_as::<ReaderProcess>(id)
            .expect("reader process exists")
    }

    /// Bytes of coded-element data stored at each server, by rank.
    pub fn stored_bytes_per_server(&self) -> Vec<u64> {
        (0..self.servers.len())
            .map(|rank| self.server_state(rank).stored_bytes() as u64)
            .collect()
    }

    /// Total bytes of coded-element data stored across all servers (the
    /// numerator of the paper's total storage cost).
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_bytes_per_server().iter().sum()
    }

    /// Total number of reader registrations still held by servers. Theorem 5.5
    /// implies this returns to zero after all reads finish (or crash).
    pub fn total_registered_readers(&self) -> usize {
        (0..self.servers.len())
            .map(|rank| self.server_state(rank).registered_readers())
            .sum()
    }

    /// Total number of `H` entries across servers (bookkeeping left over).
    pub fn total_history_entries(&self) -> usize {
        (0..self.servers.len())
            .map(|rank| self.server_state(rank).history_len())
            .sum()
    }
}
