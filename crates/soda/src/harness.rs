//! Cluster harness: builds a complete SODA / SODAerr deployment inside the
//! discrete-event simulator, injects client operations, and exposes the state
//! needed by tests and experiments (operation histories, storage occupancy,
//! message statistics).

use crate::config::{DiskFaultModel, SodaConfig};
use crate::messages::SodaMsg;
use crate::reader::ReaderProcess;
use crate::record::OpRecord;
use crate::server::ServerProcess;
use crate::writer::WriterProcess;
use soda_protocol::{value_from, Layout};
use soda_simnet::{NetworkConfig, ProcessId, RunOutcome, SimTime, Simulation, Stats};
use std::sync::Arc;

/// Configuration of a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of servers.
    pub n: usize,
    /// Number of server crashes to tolerate.
    pub f: usize,
    /// Error budget `e` (0 selects plain SODA, > 0 selects SODAerr).
    pub e: usize,
    /// Number of writer clients.
    pub num_writers: usize,
    /// Number of reader clients.
    pub num_readers: usize,
    /// RNG seed controlling message delays (and thus the interleaving).
    pub seed: u64,
    /// Network delay configuration.
    pub network: NetworkConfig,
    /// The initial object value `v0`.
    pub initial_value: Vec<u8>,
    /// Ranks of servers whose local disks silently corrupt elements
    /// (SODAerr's threat model).
    pub faulty_disks: Vec<usize>,
    /// Ablation switch: disable the relaying of concurrent writes to
    /// registered readers at every server (default `true` = paper behaviour).
    pub relay_enabled: bool,
}

impl ClusterConfig {
    /// A cluster of `n` servers tolerating `f` crashes, with one writer and
    /// one reader, uniform random delays in `[1, 10]` and an empty initial
    /// value.
    pub fn new(n: usize, f: usize) -> Self {
        ClusterConfig {
            n,
            f,
            e: 0,
            num_writers: 1,
            num_readers: 1,
            seed: 0,
            network: NetworkConfig::uniform(10),
            initial_value: Vec::new(),
            faulty_disks: Vec::new(),
            relay_enabled: true,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of writer and reader clients.
    pub fn with_clients(mut self, writers: usize, readers: usize) -> Self {
        self.num_writers = writers;
        self.num_readers = readers;
        self
    }

    /// Selects SODAerr with the given error budget.
    pub fn with_error_tolerance(mut self, e: usize) -> Self {
        self.e = e;
        self
    }

    /// Sets the network delay model.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Sets the initial object value `v0`.
    pub fn with_initial_value(mut self, value: Vec<u8>) -> Self {
        self.initial_value = value;
        self
    }

    /// Marks the given server ranks as having error-prone local disks.
    pub fn with_faulty_disks(mut self, ranks: Vec<usize>) -> Self {
        self.faulty_disks = ranks;
        self
    }

    /// Disables concurrent-write relaying at every server (ablation only).
    pub fn with_relay_disabled(mut self) -> Self {
        self.relay_enabled = false;
        self
    }
}

/// A complete simulated deployment: `n` servers plus writer and reader
/// clients, all registered with one [`Simulation`].
pub struct SodaCluster {
    sim: Simulation<SodaMsg>,
    config: Arc<SodaConfig>,
    servers: Vec<ProcessId>,
    writers: Vec<ProcessId>,
    readers: Vec<ProcessId>,
    /// Per-rank incarnation counter: bumped on every scheduled repair so each
    /// replacement gets a fresh message-id namespace (see
    /// [`ServerProcess::replacement`]).
    epochs: Vec<u64>,
}

impl SodaCluster {
    /// Builds the cluster described by `cfg`.
    pub fn build(cfg: ClusterConfig) -> Self {
        let mut sim = Simulation::new(cfg.seed, cfg.network.clone());
        // Servers are registered first so that rank i has ProcessId(i).
        let server_ids: Vec<ProcessId> = (0..cfg.n as u32).map(ProcessId).collect();
        let layout = Layout::new(server_ids, cfg.f);
        let config = if cfg.e == 0 {
            SodaConfig::soda(layout)
        } else {
            SodaConfig::soda_err(layout, cfg.e)
        };
        let initial = value_from(cfg.initial_value.clone());
        let mut servers = Vec::with_capacity(cfg.n);
        for rank in 0..cfg.n {
            let mut server = ServerProcess::new(config.clone(), rank, &initial);
            if cfg.faulty_disks.contains(&rank) {
                server = server.with_disk_fault(DiskFaultModel::Always);
            }
            if !cfg.relay_enabled {
                server = server.with_relay_disabled();
            }
            let id = sim.add_process(Box::new(server));
            debug_assert_eq!(id.index(), rank);
            servers.push(id);
        }
        let mut writers = Vec::with_capacity(cfg.num_writers);
        for _ in 0..cfg.num_writers {
            // The process id is known before insertion because ids are dense.
            let id = ProcessId(sim.num_processes() as u32);
            let writer = WriterProcess::new(config.clone(), id);
            let actual = sim.add_process(Box::new(writer));
            debug_assert_eq!(actual, id);
            writers.push(id);
        }
        let mut readers = Vec::with_capacity(cfg.num_readers);
        for _ in 0..cfg.num_readers {
            let id = ProcessId(sim.num_processes() as u32);
            let reader = ReaderProcess::new(config.clone(), id);
            let actual = sim.add_process(Box::new(reader));
            debug_assert_eq!(actual, id);
            readers.push(id);
        }
        let epochs = vec![0; cfg.n];
        SodaCluster {
            sim,
            config,
            servers,
            writers,
            readers,
            epochs,
        }
    }

    /// The shared protocol configuration.
    pub fn soda_config(&self) -> &Arc<SodaConfig> {
        &self.config
    }

    /// Server process ids, by rank.
    pub fn servers(&self) -> &[ProcessId] {
        &self.servers
    }

    /// Writer client process ids.
    pub fn writers(&self) -> &[ProcessId] {
        &self.writers
    }

    /// Reader client process ids.
    pub fn readers(&self) -> &[ProcessId] {
        &self.readers
    }

    /// The underlying simulation (read access).
    pub fn sim(&self) -> &Simulation<SodaMsg> {
        &self.sim
    }

    /// The underlying simulation (mutable access, e.g. for custom scheduling).
    pub fn sim_mut(&mut self) -> &mut Simulation<SodaMsg> {
        &mut self.sim
    }

    /// Asks writer `writer` to write `value` now (queued if it is busy).
    pub fn invoke_write(&mut self, writer: ProcessId, value: Vec<u8>) {
        self.sim
            .send_external(writer, SodaMsg::InvokeWrite(value_from(value)));
    }

    /// Asks writer `writer` to write `value` at simulated time `at`.
    pub fn invoke_write_at(&mut self, at: SimTime, writer: ProcessId, value: Vec<u8>) {
        self.sim
            .send_external_at(at, writer, SodaMsg::InvokeWrite(value_from(value)));
    }

    /// Asks reader `reader` to read now (queued if it is busy).
    pub fn invoke_read(&mut self, reader: ProcessId) {
        self.sim.send_external(reader, SodaMsg::InvokeRead);
    }

    /// Asks reader `reader` to read at simulated time `at`.
    pub fn invoke_read_at(&mut self, at: SimTime, reader: ProcessId) {
        self.sim.send_external_at(at, reader, SodaMsg::InvokeRead);
    }

    /// Crashes the server with the given rank at time `at`.
    pub fn crash_server_at(&mut self, at: SimTime, rank: usize) {
        let id = self.servers[rank];
        self.sim.schedule_crash(at, id);
    }

    /// Crashes an arbitrary process (e.g. a client) at time `at`.
    pub fn crash_process_at(&mut self, at: SimTime, id: ProcessId) {
        self.sim.schedule_crash(at, id);
    }

    /// Schedules the repair of the server with the given rank at time `at`:
    /// a fresh replacement (empty state) takes over the rank's process id and
    /// runs the SODA repair protocol, re-encoding its coded element from
    /// survivor responses. Until the repair completes the replacement counts
    /// against the crash budget `f` (it answers no tag queries).
    pub fn repair_server_at(&mut self, at: SimTime, rank: usize) {
        self.epochs[rank] += 1;
        let replacement = ServerProcess::replacement(self.config.clone(), rank, self.epochs[rank]);
        self.sim
            .schedule_recovery(at, self.servers[rank], Box::new(replacement));
    }

    /// Number of servers currently dead **or under repair** — the quantity
    /// the dynamic fault-tolerance invariant bounds by `f`.
    pub fn dead_or_repairing(&self) -> usize {
        (0..self.servers.len())
            .filter(|&rank| {
                self.sim.is_crashed(self.servers[rank])
                    || self
                        .sim
                        .process_as::<ServerProcess>(self.servers[rank])
                        .is_some_and(|s| s.is_repairing())
            })
            .count()
    }

    /// Repair status of each rank's *current* incarnation (`None` for
    /// original servers that were never replaced).
    pub fn repair_statuses(&self) -> Vec<Option<crate::server::RepairStatus>> {
        (0..self.servers.len())
            .map(|rank| {
                self.sim
                    .process_as::<ServerProcess>(self.servers[rank])
                    .and_then(|s| s.repair_status())
            })
            .collect()
    }

    /// Total repair traffic (bytes of coded-element data received by
    /// replacements during repair) across all ranks' current incarnations.
    pub fn repair_traffic_bytes(&self) -> u64 {
        self.repair_statuses()
            .iter()
            .flatten()
            .map(|s| s.traffic_bytes)
            .sum()
    }

    /// Runs the simulation until no events remain.
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.sim.run_to_quiescence()
    }

    /// Runs the simulation until the given deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.sim.run_until(deadline)
    }

    /// Message statistics accumulated so far.
    pub fn stats(&self) -> Stats {
        self.sim.stats()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// All operations completed by all clients, ordered by completion time.
    pub fn completed_ops(&self) -> Vec<OpRecord> {
        let mut ops = Vec::new();
        for &w in &self.writers {
            if let Some(writer) = self.sim.process_as::<WriterProcess>(w) {
                ops.extend(writer.completed_ops().iter().cloned());
            }
        }
        for &r in &self.readers {
            if let Some(reader) = self.sim.process_as::<ReaderProcess>(r) {
                ops.extend(reader.completed_ops().iter().cloned());
            }
        }
        ops.sort_by_key(|op| (op.completed_at, op.op));
        ops
    }

    /// Writes invoked but not completed (the writer is mid-operation, was
    /// crashed mid-operation, or was starved by a network adversary).
    /// Adversarial harnesses need these to close the operation history
    /// before atomicity checking.
    pub fn pending_writes(&self) -> Vec<crate::record::PendingWrite> {
        self.writers
            .iter()
            .filter_map(|&w| self.sim.process_as::<WriterProcess>(w))
            .filter_map(|writer| writer.in_flight())
            .collect()
    }

    /// Typed access to a server's state by rank.
    pub fn server_state(&self, rank: usize) -> &ServerProcess {
        self.sim
            .process_as::<ServerProcess>(self.servers[rank])
            .expect("server process exists")
    }

    /// Typed access to a writer's state.
    pub fn writer_state(&self, id: ProcessId) -> &WriterProcess {
        self.sim
            .process_as::<WriterProcess>(id)
            .expect("writer process exists")
    }

    /// Typed access to a reader's state.
    pub fn reader_state(&self, id: ProcessId) -> &ReaderProcess {
        self.sim
            .process_as::<ReaderProcess>(id)
            .expect("reader process exists")
    }

    /// Bytes of coded-element data stored at each server, by rank.
    pub fn stored_bytes_per_server(&self) -> Vec<u64> {
        (0..self.servers.len())
            .map(|rank| self.server_state(rank).stored_bytes() as u64)
            .collect()
    }

    /// Total bytes of coded-element data stored across all servers (the
    /// numerator of the paper's total storage cost).
    pub fn total_stored_bytes(&self) -> u64 {
        self.stored_bytes_per_server().iter().sum()
    }

    /// Total number of reader registrations still held by servers. Theorem 5.5
    /// implies this returns to zero after all reads finish (or crash).
    pub fn total_registered_readers(&self) -> usize {
        (0..self.servers.len())
            .map(|rank| self.server_state(rank).registered_readers())
            .sum()
    }

    /// Total number of `H` entries across servers (bookkeeping left over).
    pub fn total_history_entries(&self) -> usize {
        (0..self.servers.len())
            .map(|rank| self.server_state(rank).history_len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::OpKind;

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn crash_then_repair_restores_the_coded_element() {
        let mut cluster = SodaCluster::build(
            ClusterConfig::new(5, 2)
                .with_seed(7)
                .with_initial_value(b"v0".to_vec()),
        );
        let writer = cluster.writers()[0];
        let reader = cluster.readers()[0];
        let value = b"the written value, long enough to split".to_vec();
        cluster.invoke_write_at(t(10), writer, value.clone());
        cluster.run_until(t(500));
        assert_eq!(cluster.completed_ops().len(), 1, "write completed");
        let healthy_element = cluster.server_state(1).stored_element().clone();
        let healthy_tag = cluster.server_state(1).stored_tag();

        cluster.crash_server_at(t(600), 1);
        cluster.run_until(t(700));
        assert_eq!(cluster.dead_or_repairing(), 1);

        cluster.repair_server_at(t(800), 1);
        cluster.run_to_quiescence();
        let repaired = cluster.server_state(1);
        assert!(!repaired.is_repairing());
        assert_eq!(repaired.stored_tag(), healthy_tag);
        assert_eq!(repaired.stored_element().data, healthy_element.data);
        assert_eq!(cluster.dead_or_repairing(), 0);

        // Repair bandwidth: read_threshold coded elements, well under the
        // n·(size/k)+metadata acceptance bound.
        let status = cluster.repair_statuses()[1].clone().expect("was repaired");
        let elem_len = repaired.stored_bytes() as u64;
        let threshold = cluster.soda_config().read_threshold() as u64;
        assert_eq!(status.traffic_bytes, threshold * elem_len);
        assert!(status.traffic_bytes <= cluster.soda_config().n() as u64 * elem_len);
        assert_eq!(cluster.repair_traffic_bytes(), status.traffic_bytes);

        // A read after the repair still returns the written value.
        cluster.invoke_read(reader);
        cluster.run_to_quiescence();
        let ops = cluster.completed_ops();
        let read = ops.iter().find(|op| op.kind == OpKind::Read).unwrap();
        assert_eq!(read.value.as_ref(), Some(&value));
    }

    #[test]
    fn repair_during_inflight_write_reaches_the_replacement() {
        let mut cluster = SodaCluster::build(
            ClusterConfig::new(5, 2)
                .with_seed(11)
                .with_initial_value(b"v0".to_vec()),
        );
        let writer = cluster.writers()[0];
        cluster.crash_server_at(t(5), 0);
        // The write starts while rank 0 is down and its replacement repairs
        // concurrently: the md-value relay must still deliver the new
        // element to the replacement.
        cluster.invoke_write_at(t(10), writer, b"concurrent write".to_vec());
        cluster.repair_server_at(t(12), 0);
        cluster.run_to_quiescence();
        assert_eq!(cluster.completed_ops().len(), 1, "write completed");
        let repaired = cluster.server_state(0);
        assert!(!repaired.is_repairing());
        let write_tag = cluster.server_state(1).stored_tag();
        assert_eq!(repaired.stored_tag(), write_tag);
        assert_eq!(
            repaired.stored_element().data,
            cluster
                .soda_config()
                .code()
                .encode_one(b"concurrent write", 0)
                .unwrap()
                .data
        );
    }

    #[test]
    fn sodaerr_repair_collects_k_plus_2e_elements() {
        let mut cluster = SodaCluster::build(
            ClusterConfig::new(7, 2)
                .with_error_tolerance(1)
                .with_seed(3)
                .with_initial_value(b"seed value".to_vec()),
        );
        let writer = cluster.writers()[0];
        cluster.invoke_write_at(t(10), writer, b"sodaerr repair".to_vec());
        cluster.run_until(t(500));
        cluster.crash_server_at(t(600), 2);
        cluster.repair_server_at(t(700), 2);
        cluster.run_to_quiescence();
        let repaired = cluster.server_state(2);
        assert!(!repaired.is_repairing());
        let status = cluster.repair_statuses()[2].clone().unwrap();
        let elem_len = repaired.stored_bytes() as u64;
        // k + 2e = 3 + 2 elements for [7, 3] SODAerr with e = 1.
        assert_eq!(cluster.soda_config().read_threshold(), 5);
        assert_eq!(status.traffic_bytes, 5 * elem_len);
        assert_eq!(
            repaired.stored_element().data,
            cluster
                .soda_config()
                .code()
                .encode_one(b"sodaerr repair", 2)
                .unwrap()
                .data
        );
    }
}
