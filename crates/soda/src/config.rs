//! Shared configuration of one SODA / SODAerr deployment.

use soda_protocol::Layout;
use soda_rs_code::{BerlekampWelchCode, MdsCode, VandermondeCode};
use std::fmt;
use std::sync::Arc;

/// Which algorithm variant a cluster runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SodaVariant {
    /// Plain SODA: `k = n − f`, erasure-only decoding (Section IV).
    Soda,
    /// SODAerr: `k = n − f − 2e`, reads gather `k + 2e` elements and decode
    /// through the error-correcting decoder (Section VI).
    SodaErr {
        /// Maximum number of error-prone coded elements tolerated per read.
        e: usize,
    },
}

impl SodaVariant {
    /// The error budget `e` (0 for plain SODA).
    pub fn error_budget(&self) -> usize {
        match *self {
            SodaVariant::Soda => 0,
            SodaVariant::SodaErr { e } => e,
        }
    }
}

/// Model of a server whose local disk returns corrupted coded elements.
///
/// SODAerr's threat model (Section VI) is that a server may read a corrupted
/// element from its local disk during the `read-value` phase without noticing;
/// relayed elements (which come straight from memory) and metadata are never
/// corrupted. `Always` makes every local disk read bad, which is the
/// worst-case behaviour for a designated faulty-disk server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFaultModel {
    /// The disk never corrupts anything.
    None,
    /// Every local disk read returns a corrupted element.
    Always,
}

impl DiskFaultModel {
    /// Whether a local disk read should be corrupted.
    pub fn corrupts(&self) -> bool {
        matches!(self, DiskFaultModel::Always)
    }
}

/// Immutable configuration shared by all processes of one deployment.
pub struct SodaConfig {
    layout: Layout,
    variant: SodaVariant,
    code: Arc<dyn MdsCode>,
}

impl fmt::Debug for SodaConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SodaConfig")
            .field("n", &self.layout.n())
            .field("f", &self.layout.f())
            .field("variant", &self.variant)
            .field("k", &self.code.k())
            .finish()
    }
}

impl SodaConfig {
    /// Configuration for plain SODA: `[n, n − f]` code, erasure decoding.
    pub fn soda(layout: Layout) -> Arc<Self> {
        let code = VandermondeCode::new(layout.n(), layout.n() - layout.f())
            .expect("layout guarantees 1 <= k <= n <= 255");
        Arc::new(SodaConfig {
            layout,
            variant: SodaVariant::Soda,
            code: Arc::new(code),
        })
    }

    /// Configuration for SODAerr with error budget `e`: `[n, n − f − 2e]` code
    /// with the Berlekamp–Welch error-correcting decoder.
    ///
    /// # Panics
    /// Panics if `f + 2e >= n` (no valid code dimension).
    pub fn soda_err(layout: Layout, e: usize) -> Arc<Self> {
        let code = BerlekampWelchCode::for_fault_tolerance(layout.n(), layout.f(), e)
            .expect("invalid SODAerr parameters: need f + 2e < n");
        Arc::new(SodaConfig {
            layout,
            variant: SodaVariant::SodaErr { e },
            code: Arc::new(code),
        })
    }

    /// The system layout (servers, `f`).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The algorithm variant.
    pub fn variant(&self) -> SodaVariant {
        self.variant
    }

    /// The erasure code in use.
    pub fn code(&self) -> &Arc<dyn MdsCode> {
        &self.code
    }

    /// Code dimension `k` (`n − f` for SODA, `n − f − 2e` for SODAerr).
    pub fn k(&self) -> usize {
        self.code.k()
    }

    /// Number of servers `n`.
    pub fn n(&self) -> usize {
        self.layout.n()
    }

    /// Fault tolerance `f`.
    pub fn f(&self) -> usize {
        self.layout.f()
    }

    /// How many distinct coded elements (for one tag) a reader must gather
    /// before decoding: `k` for SODA, `k + 2e` for SODAerr. The same threshold
    /// governs when servers conclude that a registered reader is satisfied
    /// (READ-DISPERSE bookkeeping).
    pub fn read_threshold(&self) -> usize {
        self.k() + 2 * self.variant.error_budget()
    }

    /// Decodes a value from the gathered elements, using the error-correcting
    /// decoder when the variant has a non-zero error budget.
    pub fn decode(
        &self,
        elements: &[soda_rs_code::CodedElement],
    ) -> Result<Vec<u8>, soda_rs_code::CodeError> {
        match self.variant {
            SodaVariant::Soda => self.code.decode(elements),
            SodaVariant::SodaErr { e } => self.code.decode_with_errors(elements, e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_simnet::ProcessId;

    fn layout(n: usize, f: usize) -> Layout {
        Layout::new((0..n as u32).map(ProcessId).collect(), f)
    }

    #[test]
    fn soda_config_uses_k_equals_n_minus_f() {
        let cfg = SodaConfig::soda(layout(9, 4));
        assert_eq!(cfg.k(), 5);
        assert_eq!(cfg.read_threshold(), 5);
        assert_eq!(cfg.variant().error_budget(), 0);
        assert_eq!(cfg.n(), 9);
        assert_eq!(cfg.f(), 4);
        assert!(format!("{cfg:?}").contains("n"));
    }

    #[test]
    fn sodaerr_config_uses_k_equals_n_minus_f_minus_2e() {
        let cfg = SodaConfig::soda_err(layout(9, 2), 2);
        assert_eq!(cfg.k(), 3);
        assert_eq!(cfg.read_threshold(), 7);
        assert_eq!(cfg.variant(), SodaVariant::SodaErr { e: 2 });
    }

    #[test]
    #[should_panic(expected = "invalid SODAerr parameters")]
    fn sodaerr_rejects_impossible_parameters() {
        let _ = SodaConfig::soda_err(layout(5, 2), 2);
    }

    #[test]
    fn decode_round_trip_both_variants() {
        let value = b"some object value".to_vec();
        let cfg = SodaConfig::soda(layout(5, 2));
        let elements = cfg.code().encode(&value).unwrap();
        assert_eq!(cfg.decode(&elements[..3]).unwrap(), value);

        let cfg = SodaConfig::soda_err(layout(7, 2), 1);
        let mut elements = cfg.code().encode(&value).unwrap();
        // Corrupt one element; SODAerr must still decode from k + 2e = 5.
        for b in elements[1].data.make_mut() {
            *b ^= 0xFF;
        }
        elements.truncate(5);
        assert_eq!(cfg.decode(&elements).unwrap(), value);
    }

    #[test]
    fn disk_fault_model() {
        assert!(!DiskFaultModel::None.corrupts());
        assert!(DiskFaultModel::Always.corrupts());
    }
}
