//! The SODA writer automaton (Fig. 3 of the paper).
//!
//! A write proceeds in two phases:
//!
//! 1. **write-get** — query all servers for their stored tags, wait for a
//!    majority, and pick the highest tag `t_max`.
//! 2. **write-put** — create the new tag `t_w = (t_max.z + 1, w)` and disperse
//!    `(t_w, v)` through the MD-VALUE primitive (the full value goes only to
//!    the first `f + 1` servers; they fan out coded elements to the rest).
//!    The write completes once `k` servers have acknowledged.
//!
//! Writers are well-formed clients: a new operation starts only after the
//! previous one completed, so invocations that arrive while an operation is in
//! flight are queued.

use crate::config::SodaConfig;
use crate::messages::{OpId, SodaMsg};
use crate::record::{OpKind, OpRecord};
use soda_protocol::md::{md_value_send, MessageId};
use soda_protocol::{QuorumTracker, Tag, Value};
use soda_simnet::{Context, Process, ProcessId, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

/// Phase of the in-flight write operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePhase {
    /// No operation in flight.
    Idle,
    /// Waiting for a majority of `write-get` responses.
    Get,
    /// Value dispersed; waiting for `k` acknowledgements.
    Put,
}

/// A SODA writer client process.
pub struct WriterProcess {
    config: Arc<SodaConfig>,
    self_id: ProcessId,
    phase: WritePhase,
    pending: VecDeque<Value>,
    op_seq: u64,
    current_op: Option<OpId>,
    current_value: Option<Value>,
    current_tag: Option<Tag>,
    invoked_at: SimTime,
    get_tracker: QuorumTracker<Tag>,
    ack_tracker: QuorumTracker<()>,
    completed: Vec<OpRecord>,
}

impl WriterProcess {
    /// Creates a writer. `self_id` must be the process id under which the
    /// writer is registered with the simulation.
    pub fn new(config: Arc<SodaConfig>, self_id: ProcessId) -> Self {
        let majority = config.layout().majority();
        let k = config.k();
        WriterProcess {
            config,
            self_id,
            phase: WritePhase::Idle,
            pending: VecDeque::new(),
            op_seq: 0,
            current_op: None,
            current_value: None,
            current_tag: None,
            invoked_at: SimTime::ZERO,
            get_tracker: QuorumTracker::new(majority),
            ack_tracker: QuorumTracker::new(k),
            completed: Vec::new(),
        }
    }

    /// Operations completed so far, in completion order.
    pub fn completed_ops(&self) -> &[OpRecord] {
        &self.completed
    }

    /// Current phase.
    pub fn phase(&self) -> WritePhase {
        self.phase
    }

    /// Whether the writer has no operation in flight and no queued invocations.
    pub fn is_idle(&self) -> bool {
        self.phase == WritePhase::Idle && self.pending.is_empty()
    }

    /// Number of invocations still queued (excluding the in-flight one).
    pub fn queued(&self) -> usize {
        self.pending.len()
    }

    /// The in-flight write, if one exists (also available after a crash,
    /// since crashed processes keep their state). Queued-but-not-started
    /// invocations are not reported: they have had no effect on the system.
    pub fn in_flight(&self) -> Option<crate::record::PendingWrite> {
        let op = self.current_op?;
        Some(crate::record::PendingWrite {
            op,
            invoked_at: self.invoked_at,
            tag: self.current_tag,
            value: self
                .current_value
                .as_ref()
                .expect("an in-flight write always carries its value")
                .to_vec(),
        })
    }

    fn start_next(&mut self, ctx: &mut Context<'_, SodaMsg>) {
        if self.phase != WritePhase::Idle {
            return;
        }
        let Some(value) = self.pending.pop_front() else {
            return;
        };
        self.op_seq += 1;
        let op = OpId::new(self.self_id, self.op_seq);
        self.current_op = Some(op);
        self.current_value = Some(value);
        self.current_tag = None;
        self.invoked_at = ctx.now();
        self.phase = WritePhase::Get;
        self.get_tracker = QuorumTracker::new(self.config.layout().majority());
        for &server in self.config.layout().servers() {
            ctx.send(server, SodaMsg::WriteGet { op });
        }
    }

    fn begin_put(&mut self, ctx: &mut Context<'_, SodaMsg>) {
        let op = self.current_op.expect("put phase requires an op");
        let t_max = self
            .get_tracker
            .max_response()
            .copied()
            .unwrap_or(Tag::INITIAL);
        let tag = t_max.next(self.self_id);
        self.current_tag = Some(tag);
        self.phase = WritePhase::Put;
        self.ack_tracker = QuorumTracker::new(self.config.k());
        let value = self
            .current_value
            .clone()
            .expect("put phase requires a value");
        let mid = MessageId::new(self.self_id, op.seq);
        for dispatch in md_value_send(self.config.layout(), mid, tag, value) {
            let dest = self.config.layout().server(dispatch.to_rank);
            ctx.send(dest, SodaMsg::MdValue(dispatch.msg));
        }
    }

    fn complete(&mut self, ctx: &mut Context<'_, SodaMsg>) {
        let op = self.current_op.take().expect("completing without an op");
        let tag = self.current_tag.take().expect("completing without a tag");
        let value = self.current_value.take().map(|v| v.to_vec());
        self.completed.push(OpRecord {
            op,
            kind: OpKind::Write,
            invoked_at: self.invoked_at,
            completed_at: ctx.now(),
            tag,
            value,
        });
        self.phase = WritePhase::Idle;
        self.start_next(ctx);
    }
}

impl Process<SodaMsg> for WriterProcess {
    fn on_message(&mut self, from: ProcessId, msg: SodaMsg, ctx: &mut Context<'_, SodaMsg>) {
        match msg {
            SodaMsg::InvokeWrite(value) => {
                self.pending.push_back(value);
                self.start_next(ctx);
            }
            SodaMsg::WriteGetResp { op, tag }
                if self.phase == WritePhase::Get && self.current_op == Some(op) =>
            {
                self.get_tracker.record(from, tag);
                if self.get_tracker.is_complete() {
                    self.begin_put(ctx);
                }
            }
            SodaMsg::WriteAck { tag }
                if self.phase == WritePhase::Put && self.current_tag == Some(tag) =>
            {
                self.ack_tracker.record(from, ());
                if self.ack_tracker.is_complete() {
                    self.complete(ctx);
                }
            }
            // Writers ignore read-protocol traffic and stray messages.
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_protocol::md::MdValueMsg;
    use soda_protocol::{value_from, Layout};
    use soda_simnet::testkit::deliver;

    const WRITER: ProcessId = ProcessId(100);

    fn config(n: usize, f: usize) -> Arc<SodaConfig> {
        let layout = Layout::new((0..n as u32).map(ProcessId).collect(), f);
        SodaConfig::soda(layout)
    }

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    #[test]
    fn initial_state_is_idle() {
        let w = WriterProcess::new(config(5, 2), WRITER);
        assert_eq!(w.phase(), WritePhase::Idle);
        assert!(w.is_idle());
        assert_eq!(w.queued(), 0);
        assert!(w.completed_ops().is_empty());
    }

    #[test]
    fn invoke_starts_get_phase_querying_all_servers() {
        let cfg = config(5, 2);
        let mut w = WriterProcess::new(cfg, WRITER);
        let result = deliver(
            &mut w,
            WRITER,
            t(1),
            ProcessId::ENV,
            SodaMsg::InvokeWrite(value_from(vec![1, 2, 3])),
        );
        assert_eq!(w.phase(), WritePhase::Get);
        assert_eq!(result.sends.len(), 5);
        assert!(result
            .sends
            .iter()
            .all(|(_, m)| matches!(m, SodaMsg::WriteGet { .. })));
    }

    #[test]
    fn majority_of_get_responses_triggers_md_value_dispersal() {
        let cfg = config(5, 2);
        let mut w = WriterProcess::new(cfg, WRITER);
        deliver(
            &mut w,
            WRITER,
            t(1),
            ProcessId::ENV,
            SodaMsg::InvokeWrite(value_from(vec![7u8; 40])),
        );
        let op = OpId::new(WRITER, 1);
        // Two responses: still in Get phase (majority of 5 is 3).
        for s in 0..2u32 {
            let r = deliver(
                &mut w,
                WRITER,
                t(2),
                ProcessId(s),
                SodaMsg::WriteGetResp {
                    op,
                    tag: Tag::new(s as u64, ProcessId(s)),
                },
            );
            assert!(r.sends.is_empty());
            assert_eq!(w.phase(), WritePhase::Get);
        }
        // Third response completes the majority; the writer picks the highest
        // tag (2, p1... actually (1, p1)) and disperses with (2, WRITER).
        let r = deliver(
            &mut w,
            WRITER,
            t(3),
            ProcessId(2),
            SodaMsg::WriteGetResp {
                op,
                tag: Tag::new(2, ProcessId(2)),
            },
        );
        assert_eq!(w.phase(), WritePhase::Put);
        // Full value goes to the first f + 1 = 3 servers only.
        assert_eq!(r.sends.len(), 3);
        for (i, (dest, msg)) in r.sends.iter().enumerate() {
            assert_eq!(*dest, ProcessId(i as u32));
            match msg {
                SodaMsg::MdValue(MdValueMsg::Full { tag, value, .. }) => {
                    assert_eq!(*tag, Tag::new(3, WRITER));
                    assert_eq!(value.len(), 40);
                }
                other => panic!("expected Full, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_get_responses_do_not_advance_phase() {
        let cfg = config(5, 2);
        let mut w = WriterProcess::new(cfg, WRITER);
        deliver(
            &mut w,
            WRITER,
            t(1),
            ProcessId::ENV,
            SodaMsg::InvokeWrite(value_from(vec![1])),
        );
        let op = OpId::new(WRITER, 1);
        for _ in 0..5 {
            deliver(
                &mut w,
                WRITER,
                t(2),
                ProcessId(0),
                SodaMsg::WriteGetResp {
                    op,
                    tag: Tag::INITIAL,
                },
            );
        }
        assert_eq!(w.phase(), WritePhase::Get, "same server repeated");
    }

    #[test]
    fn k_acks_complete_the_write_and_start_the_next() {
        let cfg = config(5, 2); // k = 3
        let mut w = WriterProcess::new(cfg, WRITER);
        deliver(
            &mut w,
            WRITER,
            t(1),
            ProcessId::ENV,
            SodaMsg::InvokeWrite(value_from(vec![1])),
        );
        // Queue a second write while the first is in flight.
        deliver(
            &mut w,
            WRITER,
            t(1),
            ProcessId::ENV,
            SodaMsg::InvokeWrite(value_from(vec![2])),
        );
        assert_eq!(w.queued(), 1);
        let op = OpId::new(WRITER, 1);
        for s in 0..3u32 {
            deliver(
                &mut w,
                WRITER,
                t(2),
                ProcessId(s),
                SodaMsg::WriteGetResp {
                    op,
                    tag: Tag::INITIAL,
                },
            );
        }
        let tag = Tag::new(1, WRITER);
        assert_eq!(w.phase(), WritePhase::Put);
        // Acks from 2 servers: not yet complete.
        for s in 0..2u32 {
            deliver(
                &mut w,
                WRITER,
                t(4),
                ProcessId(s),
                SodaMsg::WriteAck { tag },
            );
        }
        assert!(w.completed_ops().is_empty());
        // Ack with the wrong tag is ignored.
        deliver(
            &mut w,
            WRITER,
            t(4),
            ProcessId(4),
            SodaMsg::WriteAck {
                tag: Tag::new(9, WRITER),
            },
        );
        assert!(w.completed_ops().is_empty());
        // Third matching ack completes the write and starts the queued one.
        let r = deliver(
            &mut w,
            WRITER,
            t(5),
            ProcessId(2),
            SodaMsg::WriteAck { tag },
        );
        assert_eq!(w.completed_ops().len(), 1);
        let rec = &w.completed_ops()[0];
        assert_eq!(rec.tag, tag);
        assert_eq!(rec.kind, OpKind::Write);
        assert_eq!(rec.value.as_deref(), Some([1u8].as_slice()));
        assert_eq!(rec.latency(), 4);
        // The queued write immediately issued its write-get round.
        assert_eq!(w.phase(), WritePhase::Get);
        assert_eq!(r.sends.len(), 5);
        assert_eq!(w.queued(), 0);
    }

    #[test]
    fn responses_for_stale_ops_are_ignored() {
        let cfg = config(5, 1);
        let mut w = WriterProcess::new(cfg, WRITER);
        deliver(
            &mut w,
            WRITER,
            t(1),
            ProcessId::ENV,
            SodaMsg::InvokeWrite(value_from(vec![1])),
        );
        let stale = OpId::new(WRITER, 99);
        let r = deliver(
            &mut w,
            WRITER,
            t(2),
            ProcessId(0),
            SodaMsg::WriteGetResp {
                op: stale,
                tag: Tag::INITIAL,
            },
        );
        assert!(r.sends.is_empty());
        assert_eq!(w.phase(), WritePhase::Get);
        // Irrelevant message kinds are ignored too.
        let r = deliver(&mut w, WRITER, t(2), ProcessId(0), SodaMsg::InvokeRead);
        assert!(r.sends.is_empty());
    }
}
