//! SODA and SODAerr: storage-optimized data-atomic MWMR register emulation.
//!
//! This crate is the core contribution of the reproduced paper
//! (*"Storage-Optimized Data-Atomic Algorithms for Handling Erasures and
//! Errors in Distributed Storage Systems"*, Konwar et al.). It implements, on
//! top of the [`soda_simnet`] execution substrate and the [`soda_protocol`]
//! primitives:
//!
//! * the **SODA** algorithm (Section IV): an `[n, k = n − f]` MDS-coded
//!   multi-writer multi-reader atomic register with total storage cost
//!   `n/(n−f)`, write cost `O(f²)` and read cost `n/(n−f)·(δw + 1)`;
//! * the **SODAerr** variant (Section VI): the same protocol with
//!   `k = n − f − 2e`, tolerating up to `e` silently corrupted coded elements
//!   served from the servers' local disks during reads;
//! * a [`harness`] for building complete clusters inside the simulator,
//!   injecting client operations, and extracting operation histories, storage
//!   occupancy and cost measurements for the experiment suite.
//!
//! The three process roles map one-to-one onto the paper's automata:
//!
//! | paper role | type | behaviour |
//! |---|---|---|
//! | writer `w ∈ W` | [`WriterProcess`] | `write-get` (majority tag query) then `write-put` (MD-VALUE dispersal, wait for `k` acks) |
//! | reader `r ∈ R` | [`ReaderProcess`] | `read-get` (majority tag query), `read-value` (register + collect coded elements), `read-complete` |
//! | server `s ∈ S` | [`ServerProcess`] | stores one `(tag, coded element)` pair, relays concurrent writes to registered readers, runs the READ-DISPERSE bookkeeping that eventually unregisters every reader |
//!
//! # Building clusters
//!
//! Application code should not construct deployments through this crate
//! directly: the `soda-registry` crate's `RegisterCluster` trait and
//! `ClusterBuilder` provide the one validated, protocol-agnostic client API
//! over SODA, SODAerr and the baselines (select this crate's algorithms with
//! `ProtocolKind::Soda` / `ProtocolKind::SodaErr { e }`). The [`harness`]
//! module here is the *backend* that facade wraps.
//!
//! ```ignore
//! use soda_registry::{ClusterBuilder, ProtocolKind};
//!
//! let mut cluster = ClusterBuilder::new(ProtocolKind::Soda, 5, 2)
//!     .with_seed(7)
//!     .build()
//!     .unwrap();
//! cluster.invoke_write(0, b"hello atomic world".to_vec());
//! cluster.run_to_quiescence();
//! cluster.invoke_read(0);
//! cluster.run_to_quiescence();
//! assert_eq!(cluster.completed_ops().len(), 2);
//! ```
//!
//! The protocol pieces themselves stay directly usable, e.g. the shared
//! configuration:
//!
//! ```
//! use soda::SodaConfig;
//! use soda_protocol::Layout;
//! use soda_simnet::ProcessId;
//!
//! let layout = Layout::new((0..5u32).map(ProcessId).collect(), 2);
//! let config = soda::SodaConfig::soda(layout);
//! assert_eq!(config.k(), 3); // k = n - f
//! assert_eq!(config.read_threshold(), 3);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod harness;

mod config;
mod messages;
mod reader;
mod record;
mod server;
mod writer;

pub use adversary::coded_element_corruptor;
pub use config::{DiskFaultModel, SodaConfig, SodaVariant};
pub use messages::{MetaPayload, OpId, SodaMsg};
pub use reader::{ReadPhase, ReaderProcess};
pub use record::{OpKind, OpRecord, PendingWrite};
pub use server::{RepairPhase, RepairStatus, ServerProcess};
pub use writer::{WritePhase, WriterProcess};
