//! SODA and SODAerr: storage-optimized data-atomic MWMR register emulation.
//!
//! This crate is the core contribution of the reproduced paper
//! (*"Storage-Optimized Data-Atomic Algorithms for Handling Erasures and
//! Errors in Distributed Storage Systems"*, Konwar et al.). It implements, on
//! top of the [`soda_simnet`] execution substrate and the [`soda_protocol`]
//! primitives:
//!
//! * the **SODA** algorithm (Section IV): an `[n, k = n − f]` MDS-coded
//!   multi-writer multi-reader atomic register with total storage cost
//!   `n/(n−f)`, write cost `O(f²)` and read cost `n/(n−f)·(δw + 1)`;
//! * the **SODAerr** variant (Section VI): the same protocol with
//!   `k = n − f − 2e`, tolerating up to `e` silently corrupted coded elements
//!   served from the servers' local disks during reads;
//! * a [`harness`] for building complete clusters inside the simulator,
//!   injecting client operations, and extracting operation histories, storage
//!   occupancy and cost measurements for the experiment suite.
//!
//! The three process roles map one-to-one onto the paper's automata:
//!
//! | paper role | type | behaviour |
//! |---|---|---|
//! | writer `w ∈ W` | [`WriterProcess`] | `write-get` (majority tag query) then `write-put` (MD-VALUE dispersal, wait for `k` acks) |
//! | reader `r ∈ R` | [`ReaderProcess`] | `read-get` (majority tag query), `read-value` (register + collect coded elements), `read-complete` |
//! | server `s ∈ S` | [`ServerProcess`] | stores one `(tag, coded element)` pair, relays concurrent writes to registered readers, runs the READ-DISPERSE bookkeeping that eventually unregisters every reader |
//!
//! # Quick start
//!
//! ```
//! use soda::harness::{ClusterConfig, SodaCluster};
//!
//! // 5 servers tolerating f = 2 crashes, one writer, one reader.
//! let mut cluster = SodaCluster::build(ClusterConfig::new(5, 2).with_seed(7));
//! let w = cluster.writers()[0];
//! let r = cluster.readers()[0];
//! cluster.invoke_write(w, b"hello atomic world".to_vec());
//! cluster.run_to_quiescence();
//! cluster.invoke_read(r);
//! cluster.run_to_quiescence();
//! let ops = cluster.completed_ops();
//! assert_eq!(ops.len(), 2);
//! let read = ops.iter().find(|op| op.kind.is_read()).unwrap();
//! assert_eq!(read.value.as_deref(), Some(b"hello atomic world".as_slice()));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;

mod config;
mod messages;
mod reader;
mod record;
mod server;
mod writer;

pub use config::{DiskFaultModel, SodaConfig, SodaVariant};
pub use messages::{MetaPayload, OpId, SodaMsg};
pub use reader::{ReadPhase, ReaderProcess};
pub use record::{OpKind, OpRecord};
pub use server::ServerProcess;
pub use writer::{WritePhase, WriterProcess};
