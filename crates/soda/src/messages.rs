//! Message types exchanged by SODA processes.
//!
//! Two families of messages exist, mirroring Section IV of the paper:
//! *metadata* messages (phase queries, acknowledgements, registration and the
//! READ-DISPERSE bookkeeping) which are free in the cost model, and *data*
//! messages (the MD-VALUE dispersal of a write and the coded elements relayed
//! to readers) which are charged their payload size.

use soda_protocol::md::{MdMetaMsg, MdValueMsg};
use soda_protocol::{Tag, Value};
use soda_rs_code::CodedElement;
use soda_simnet::{Message, ProcessId};

/// Identifier of a single client operation (read or write).
///
/// The paper (Section IV, note 3) requires each read to carry a unique
/// identifier in addition to the reader id so that stale bookkeeping entries
/// from earlier reads cannot interfere; pairing the client id with a
/// per-client sequence number achieves exactly that, for writes as well.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId {
    /// The invoking client process.
    pub client: ProcessId,
    /// Per-client operation sequence number (starts at 1).
    pub seq: u64,
}

impl OpId {
    /// Creates an operation id.
    pub fn new(client: ProcessId, seq: u64) -> Self {
        OpId { client, seq }
    }
}

/// Metadata payloads dispersed through the MD-META primitive.
#[derive(Clone, Debug, PartialEq)]
pub enum MetaPayload {
    /// `READ-VALUE`: reader `op` requests registration with requested tag.
    ReadValue {
        /// The read operation (identifies the reader process and the read).
        op: OpId,
        /// The tag `t_r` the reader selected in its get phase.
        tag: Tag,
    },
    /// `READ-COMPLETE`: reader `op` finished; servers may unregister it.
    ReadComplete {
        /// The read operation.
        op: OpId,
        /// The tag the reader had requested.
        tag: Tag,
    },
    /// `READ-DISPERSE`: server `server_rank` reports that it sent the coded
    /// element for `tag` to reader `op`.
    ReadDisperse {
        /// The tag whose element was sent.
        tag: Tag,
        /// Rank of the server that sent the element.
        server_rank: usize,
        /// The read operation the element was sent to.
        op: OpId,
    },
}

/// All messages of the SODA / SODAerr protocol.
#[derive(Clone, Debug)]
pub enum SodaMsg {
    // ----- client operation invocations (injected by the environment) -----
    /// Ask a writer process to perform a write of the given value.
    InvokeWrite(Value),
    /// Ask a reader process to perform a read.
    InvokeRead,

    // ----- write protocol -----
    /// `write-get` query from a writer.
    WriteGet {
        /// The write operation.
        op: OpId,
    },
    /// Server's response to `write-get`: its locally stored tag.
    WriteGetResp {
        /// The write operation this responds to.
        op: OpId,
        /// The responding server's stored tag.
        tag: Tag,
    },
    /// A message of the MD-VALUE dispersal (full value along the backbone or a
    /// coded element to its destination server). Carries object-value data.
    MdValue(MdValueMsg),
    /// Server acknowledgement that it processed the MD-VALUE delivery for
    /// `tag` (sent to the writer identified inside the tag).
    WriteAck {
        /// The tag being acknowledged.
        tag: Tag,
    },

    // ----- read protocol -----
    /// `read-get` query from a reader.
    ReadGet {
        /// The read operation.
        op: OpId,
    },
    /// Server's response to `read-get`: its locally stored tag.
    ReadGetResp {
        /// The read operation this responds to.
        op: OpId,
        /// The responding server's stored tag.
        tag: Tag,
    },
    /// A metadata message dispersed through MD-META (READ-VALUE,
    /// READ-COMPLETE or READ-DISPERSE).
    MdMeta(MdMetaMsg<MetaPayload>),
    /// A coded element sent from a server to a registered reader (either the
    /// server's stored element or the element of a concurrent write). Carries
    /// object-value data.
    CodedToReader {
        /// The read operation the element is for.
        op: OpId,
        /// The tag of the element.
        tag: Tag,
        /// The coded element (its `index` is the sending server's rank).
        element: CodedElement,
    },
}

impl Message for SodaMsg {
    fn data_bytes(&self) -> usize {
        match self {
            SodaMsg::InvokeWrite(_) => 0, // local hand-off, not a network transfer
            SodaMsg::MdValue(inner) => inner.data_bytes(),
            SodaMsg::CodedToReader { element, .. } => element.data.len(),
            _ => 0,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            SodaMsg::InvokeWrite(_) => "invoke-write",
            SodaMsg::InvokeRead => "invoke-read",
            SodaMsg::WriteGet { .. } => "write-get",
            SodaMsg::WriteGetResp { .. } => "write-get-resp",
            SodaMsg::MdValue(MdValueMsg::Full { .. }) => "md-value-full",
            SodaMsg::MdValue(MdValueMsg::Coded { .. }) => "md-value-coded",
            SodaMsg::WriteAck { .. } => "write-ack",
            SodaMsg::ReadGet { .. } => "read-get",
            SodaMsg::ReadGetResp { .. } => "read-get-resp",
            SodaMsg::MdMeta(m) => match m.payload {
                MetaPayload::ReadValue { .. } => "read-value",
                MetaPayload::ReadComplete { .. } => "read-complete",
                MetaPayload::ReadDisperse { .. } => "read-disperse",
            },
            SodaMsg::CodedToReader { .. } => "coded-to-reader",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_protocol::md::MessageId;
    use soda_protocol::value_from;

    #[test]
    fn data_bytes_charged_only_for_value_carrying_messages() {
        let value = value_from(vec![0u8; 100]);
        let full = SodaMsg::MdValue(MdValueMsg::Full {
            mid: MessageId::new(ProcessId(1), 1),
            tag: Tag::INITIAL,
            value,
        });
        assert_eq!(full.data_bytes(), 100);
        assert_eq!(full.kind(), "md-value-full");

        let coded = SodaMsg::MdValue(MdValueMsg::Coded {
            mid: MessageId::new(ProcessId(1), 1),
            tag: Tag::INITIAL,
            element: CodedElement::new(2, vec![1, 2, 3]),
        });
        assert_eq!(coded.data_bytes(), 3);
        assert_eq!(coded.kind(), "md-value-coded");

        let to_reader = SodaMsg::CodedToReader {
            op: OpId::new(ProcessId(9), 1),
            tag: Tag::INITIAL,
            element: CodedElement::new(0, vec![5; 7]),
        };
        assert_eq!(to_reader.data_bytes(), 7);

        // Metadata messages are free.
        for msg in [
            SodaMsg::WriteGet {
                op: OpId::new(ProcessId(1), 1),
            },
            SodaMsg::WriteGetResp {
                op: OpId::new(ProcessId(1), 1),
                tag: Tag::INITIAL,
            },
            SodaMsg::WriteAck { tag: Tag::INITIAL },
            SodaMsg::ReadGet {
                op: OpId::new(ProcessId(1), 1),
            },
            SodaMsg::ReadGetResp {
                op: OpId::new(ProcessId(1), 1),
                tag: Tag::INITIAL,
            },
            SodaMsg::InvokeRead,
        ] {
            assert_eq!(msg.data_bytes(), 0, "{:?}", msg.kind());
        }
    }

    #[test]
    fn invoke_write_is_not_a_network_transfer() {
        let msg = SodaMsg::InvokeWrite(value_from(vec![1u8; 50]));
        assert_eq!(msg.data_bytes(), 0);
        assert_eq!(msg.kind(), "invoke-write");
    }

    #[test]
    fn meta_payload_kinds() {
        let op = OpId::new(ProcessId(3), 7);
        let mk = |payload| {
            SodaMsg::MdMeta(MdMetaMsg {
                mid: MessageId::new(ProcessId(3), 7),
                payload,
            })
        };
        assert_eq!(
            mk(MetaPayload::ReadValue {
                op,
                tag: Tag::INITIAL
            })
            .kind(),
            "read-value"
        );
        assert_eq!(
            mk(MetaPayload::ReadComplete {
                op,
                tag: Tag::INITIAL
            })
            .kind(),
            "read-complete"
        );
        assert_eq!(
            mk(MetaPayload::ReadDisperse {
                tag: Tag::INITIAL,
                server_rank: 2,
                op
            })
            .kind(),
            "read-disperse"
        );
    }

    #[test]
    fn op_ids_are_ordered_and_unique_per_client_seq() {
        let a = OpId::new(ProcessId(1), 1);
        let b = OpId::new(ProcessId(1), 2);
        let c = OpId::new(ProcessId(2), 1);
        assert!(a < b);
        assert_ne!(a, c);
        assert_eq!(a, OpId::new(ProcessId(1), 1));
    }
}
