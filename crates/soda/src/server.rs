//! The SODA server automaton (Fig. 5, with the Fig. 6 modification for
//! SODAerr).
//!
//! Each server stores exactly one `(tag, coded element)` pair — that is where
//! the `n/(n−f)` storage optimality comes from — plus metadata:
//!
//! * `Rc` — the set of registered readers `(r, t_r)` currently being served;
//! * `H`  — a set of `(tag, server, reader)` triples recording which servers
//!   have sent which coded elements to which readers (fed by the
//!   READ-DISPERSE messages), used to decide when a registered reader has
//!   certainly received enough elements and can be unregistered, even if the
//!   reader itself crashed (Theorem 5.5: no server relays forever).
//!
//! The server participates in both message-disperse primitives: it relays the
//! MD-VALUE dispersal of writes and the MD-META dispersal of READ-VALUE /
//! READ-COMPLETE / READ-DISPERSE metadata.

use crate::config::{DiskFaultModel, SodaConfig};
use crate::messages::{MetaPayload, OpId, SodaMsg};
use soda_protocol::md::{md_meta_send, MdMetaRelay, MdValueMsg, MdValueRelay, MessageId};
use soda_protocol::{Tag, Value};
use soda_rs_code::CodedElement;
use soda_simnet::{Context, Process, ProcessId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A SODA / SODAerr server process.
pub struct ServerProcess {
    config: Arc<SodaConfig>,
    my_rank: usize,
    /// Locally stored `(t, c_s)` pair.
    tag: Tag,
    element: CodedElement,
    /// `Rc`: registered readers and the tag each requested.
    registered: BTreeMap<OpId, Tag>,
    /// `H`: `(tag, sender rank, reader op)` triples.
    history: BTreeSet<(Tag, usize, OpId)>,
    /// Relay state of the MD-VALUE primitive.
    md_value: MdValueRelay,
    /// Relay state of the MD-META primitive.
    md_meta: MdMetaRelay,
    /// Counter for this server's own MD-META invocations (READ-DISPERSE).
    md_counter: u64,
    /// Local-disk fault model (SODAerr experiments mark some servers bad).
    disk_fault: DiskFaultModel,
    /// Ablation switch: when `false`, the server does not relay the elements
    /// of concurrent writes to registered readers (Fig. 5, response 3, lines
    /// 4–8 disabled). Used by the `ablation_relay` experiment to demonstrate
    /// that reader registration + relaying is what makes reads live under
    /// concurrent writes.
    relay_enabled: bool,
}

impl ServerProcess {
    /// Creates the server with the given rank, storing the coded element of
    /// the initial value `v0` under the initial tag `t0`.
    pub fn new(config: Arc<SodaConfig>, my_rank: usize, initial_value: &Value) -> Self {
        let element = config
            .code()
            .encode_one(initial_value, my_rank)
            .expect("rank is within 0..n by construction");
        ServerProcess {
            config,
            my_rank,
            tag: Tag::INITIAL,
            element,
            registered: BTreeMap::new(),
            history: BTreeSet::new(),
            md_value: MdValueRelay::new(my_rank),
            md_meta: MdMetaRelay::new(my_rank),
            md_counter: 0,
            disk_fault: DiskFaultModel::None,
            relay_enabled: true,
        }
    }

    /// Marks this server's local disk as error-prone: every element it reads
    /// from "disk" during the read-value phase is silently corrupted.
    pub fn with_disk_fault(mut self, fault: DiskFaultModel) -> Self {
        self.disk_fault = fault;
        self
    }

    /// Disables relaying of concurrent writes to registered readers
    /// (ablation only — this breaks the liveness argument of Theorem 5.1).
    pub fn with_relay_disabled(mut self) -> Self {
        self.relay_enabled = false;
        self
    }

    /// The tag of the locally stored element.
    pub fn stored_tag(&self) -> Tag {
        self.tag
    }

    /// Number of bytes of coded-element data stored locally (the storage cost
    /// contribution of this server, un-normalized).
    pub fn stored_bytes(&self) -> usize {
        self.element.data.len()
    }

    /// Number of currently registered readers (`|Rc|`).
    pub fn registered_readers(&self) -> usize {
        self.registered.len()
    }

    /// Number of entries in the history set `H`.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Number of message-id tombstones retained by the two message-disperse
    /// relays (metadata only; see Theorem 3.2).
    pub fn md_tombstones(&self) -> usize {
        self.md_value.tombstones() + self.md_meta.tombstones()
    }

    fn server_pid(&self, rank: usize) -> ProcessId {
        self.config.layout().server(rank)
    }

    fn next_mid(&mut self) -> MessageId {
        self.md_counter += 1;
        MessageId::new(self.server_pid(self.my_rank), self.md_counter)
    }

    /// Reads the locally stored element "from disk", applying the configured
    /// disk-fault model (SODAerr threat model: corruption only on local disk
    /// reads performed for the read-value phase).
    fn local_disk_read(&self) -> CodedElement {
        let mut element = self.element.clone();
        if self.disk_fault.corrupts() {
            for byte in element.data.iter_mut() {
                *byte ^= 0x5A;
            }
            // An all-zero element would still differ; also perturb the first
            // byte deterministically so even empty payloads change shape.
            if let Some(first) = element.data.first_mut() {
                *first = first.wrapping_add(1);
            }
        }
        element
    }

    /// Sends `(tag, element)` to the reader of `op` and performs the
    /// bookkeeping the paper attaches to that send: record the triple in `H`,
    /// disperse READ-DISPERSE to the other servers, and re-check whether the
    /// reader can be unregistered.
    fn send_element_to_reader(
        &mut self,
        op: OpId,
        tag: Tag,
        element: CodedElement,
        ctx: &mut Context<'_, SodaMsg>,
    ) {
        ctx.send(op.client, SodaMsg::CodedToReader { op, tag, element });
        self.history.insert((tag, self.my_rank, op));
        let mid = self.next_mid();
        let payload = MetaPayload::ReadDisperse {
            tag,
            server_rank: self.my_rank,
            op,
        };
        for dispatch in md_meta_send(self.config.layout(), mid, payload) {
            let dest = self.server_pid(dispatch.to_rank);
            ctx.send(dest, SodaMsg::MdMeta(dispatch.msg));
        }
        self.maybe_unregister(tag, op);
    }

    /// Fig. 5 lines 30-37 (with the Fig. 6 threshold): once `H` records that
    /// at least `k` (SODA) or `k + 2e` (SODAerr) distinct servers have sent the
    /// element of some tag to reader `op`, unregister the reader and drop its
    /// history entries.
    fn maybe_unregister(&mut self, tag: Tag, op: OpId) {
        if !self.registered.contains_key(&op) {
            return;
        }
        let sent_count = self
            .history
            .iter()
            .filter(|(t, _, o)| *t == tag && *o == op)
            .count();
        if sent_count >= self.config.read_threshold() {
            self.registered.remove(&op);
            self.history.retain(|(_, _, o)| *o != op);
        }
    }

    /// Handles `md-value-deliver(t_w, c_s)`: relay to registered readers,
    /// update local storage if the tag is newer, and acknowledge the writer
    /// (Fig. 5, response 3).
    fn on_md_value_deliver(
        &mut self,
        tag: Tag,
        element: CodedElement,
        ctx: &mut Context<'_, SodaMsg>,
    ) {
        let interested: Vec<(OpId, Tag)> = if self.relay_enabled {
            self.registered
                .iter()
                .map(|(&op, &tr)| (op, tr))
                .filter(|&(_, tr)| tag >= tr)
                .collect()
        } else {
            Vec::new()
        };
        for (op, _) in interested {
            // Relayed elements come straight from memory, so the disk-fault
            // model does not apply here.
            self.send_element_to_reader(op, tag, element.clone(), ctx);
        }
        if tag > self.tag {
            self.tag = tag;
            self.element = element;
        }
        ctx.send(tag.writer, SodaMsg::WriteAck { tag });
    }

    /// Handles delivery of a READ-VALUE registration (Fig. 5, response 5).
    fn on_read_value(&mut self, op: OpId, requested: Tag, ctx: &mut Context<'_, SodaMsg>) {
        // If the READ-COMPLETE marker `(t0, s, r)` is already present, the read
        // finished before its registration arrived here: drop the stale
        // bookkeeping and do not register.
        let marker = (Tag::INITIAL, self.my_rank, op);
        if self.history.contains(&marker) {
            self.history.retain(|(_, _, o)| *o != op);
            return;
        }
        self.registered.insert(op, requested);
        if self.tag >= requested {
            let tag = self.tag;
            let element = self.local_disk_read();
            self.send_element_to_reader(op, tag, element, ctx);
        }
    }

    /// Handles delivery of a READ-COMPLETE (Fig. 5, response 6).
    fn on_read_complete(&mut self, op: OpId) {
        if self.registered.remove(&op).is_some() {
            self.history.retain(|(_, _, o)| *o != op);
        } else {
            // Registration has not arrived yet; leave a marker so the later
            // READ-VALUE is ignored instead of re-registering a finished read.
            self.history.insert((Tag::INITIAL, self.my_rank, op));
        }
    }

    /// Handles delivery of a READ-DISPERSE report (Fig. 5, response 7 /
    /// Fig. 6 for SODAerr).
    fn on_read_disperse(&mut self, tag: Tag, server_rank: usize, op: OpId) {
        self.history.insert((tag, server_rank, op));
        self.maybe_unregister(tag, op);
    }
}

impl Process<SodaMsg> for ServerProcess {
    fn on_message(&mut self, from: ProcessId, msg: SodaMsg, ctx: &mut Context<'_, SodaMsg>) {
        match msg {
            SodaMsg::WriteGet { op } => {
                ctx.send(from, SodaMsg::WriteGetResp { op, tag: self.tag });
            }
            SodaMsg::ReadGet { op } => {
                ctx.send(from, SodaMsg::ReadGetResp { op, tag: self.tag });
            }
            SodaMsg::MdValue(md_msg) => {
                let action = match md_msg {
                    MdValueMsg::Full { mid, tag, value } => self.md_value.on_full(
                        self.config.layout(),
                        self.config.code().as_ref(),
                        mid,
                        tag,
                        &value,
                    ),
                    MdValueMsg::Coded { mid, tag, element } => soda_protocol::md::MdValueAction {
                        deliver: self.md_value.on_coded(mid, tag, element),
                        relays: Vec::new(),
                    },
                };
                for dispatch in action.relays {
                    let dest = self.server_pid(dispatch.to_rank);
                    ctx.send(dest, SodaMsg::MdValue(dispatch.msg));
                }
                if let Some((tag, element)) = action.deliver {
                    self.on_md_value_deliver(tag, element, ctx);
                }
            }
            SodaMsg::MdMeta(meta) => {
                let action = self
                    .md_meta
                    .on_meta(self.config.layout(), meta.mid, &meta.payload);
                for dispatch in action.relays {
                    let dest = self.server_pid(dispatch.to_rank);
                    ctx.send(dest, SodaMsg::MdMeta(dispatch.msg));
                }
                if let Some(payload) = action.deliver {
                    match payload {
                        MetaPayload::ReadValue { op, tag } => self.on_read_value(op, tag, ctx),
                        MetaPayload::ReadComplete { op, .. } => self.on_read_complete(op),
                        MetaPayload::ReadDisperse {
                            tag,
                            server_rank,
                            op,
                        } => self.on_read_disperse(tag, server_rank, op),
                    }
                }
            }
            // Servers ignore client-side messages.
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_protocol::md::MdMetaMsg;
    use soda_protocol::{value_from, Layout};
    use soda_simnet::testkit::deliver;
    use soda_simnet::SimTime;

    const WRITER: ProcessId = ProcessId(100);
    const READER: ProcessId = ProcessId(200);

    fn config(n: usize, f: usize) -> Arc<SodaConfig> {
        let layout = Layout::new((0..n as u32).map(ProcessId).collect(), f);
        SodaConfig::soda(layout)
    }

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn server(cfg: &Arc<SodaConfig>, rank: usize) -> ServerProcess {
        ServerProcess::new(cfg.clone(), rank, &value_from(b"initial".to_vec()))
    }

    fn full_msg(_cfg: &Arc<SodaConfig>, tag: Tag, value: &[u8], counter: u64) -> SodaMsg {
        SodaMsg::MdValue(MdValueMsg::Full {
            mid: MessageId::new(tag.writer, counter),
            tag,
            value: value_from(value.to_vec()),
        })
    }

    fn read_value_msg(op: OpId, tag: Tag, counter: u64) -> SodaMsg {
        SodaMsg::MdMeta(MdMetaMsg {
            mid: MessageId::new(op.client, counter),
            payload: MetaPayload::ReadValue { op, tag },
        })
    }

    fn read_complete_msg(op: OpId, tag: Tag, counter: u64) -> SodaMsg {
        SodaMsg::MdMeta(MdMetaMsg {
            mid: MessageId::new(op.client, counter),
            payload: MetaPayload::ReadComplete { op, tag },
        })
    }

    fn read_disperse_msg(tag: Tag, server_rank: usize, op: OpId, counter: u64) -> SodaMsg {
        SodaMsg::MdMeta(MdMetaMsg {
            mid: MessageId::new(ProcessId(server_rank as u32), counter),
            payload: MetaPayload::ReadDisperse {
                tag,
                server_rank,
                op,
            },
        })
    }

    #[test]
    fn initial_state_stores_initial_value_element() {
        let cfg = config(5, 2);
        let s = server(&cfg, 3);
        assert_eq!(s.stored_tag(), Tag::INITIAL);
        assert!(s.stored_bytes() > 0);
        assert_eq!(s.registered_readers(), 0);
        assert_eq!(s.history_len(), 0);
        assert_eq!(s.md_tombstones(), 0);
    }

    #[test]
    fn write_get_and_read_get_respond_with_stored_tag() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 0);
        let op = OpId::new(WRITER, 1);
        let r = deliver(&mut s, ProcessId(0), t(1), WRITER, SodaMsg::WriteGet { op });
        assert_eq!(r.sends.len(), 1);
        assert!(matches!(
            r.sends[0].1,
            SodaMsg::WriteGetResp { tag, .. } if tag == Tag::INITIAL
        ));
        let rop = OpId::new(READER, 1);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            READER,
            SodaMsg::ReadGet { op: rop },
        );
        assert!(matches!(r.sends[0].1, SodaMsg::ReadGetResp { .. }));
    }

    #[test]
    fn md_value_full_updates_storage_relays_and_acks() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 0);
        let tag = Tag::new(1, WRITER);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(2),
            WRITER,
            full_msg(&cfg, tag, b"value-one", 1),
        );
        assert_eq!(s.stored_tag(), tag);
        // Relays: full to ranks 1..2 (backbone), coded to ranks 3..4, plus an
        // ack back to the writer.
        let ack_count = r
            .sends
            .iter()
            .filter(|(to, m)| *to == WRITER && matches!(m, SodaMsg::WriteAck { .. }))
            .count();
        assert_eq!(ack_count, 1);
        let fulls = r
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, SodaMsg::MdValue(MdValueMsg::Full { .. })))
            .count();
        let codeds = r
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, SodaMsg::MdValue(MdValueMsg::Coded { .. })))
            .count();
        assert_eq!(fulls, 2);
        assert_eq!(codeds, 2);
    }

    #[test]
    fn older_tag_does_not_overwrite_but_still_acks() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 4); // outside the backbone: receives Coded
        let newer = Tag::new(5, WRITER);
        let older = Tag::new(2, WRITER);
        let elements = cfg.code().encode(b"newer").unwrap();
        deliver(
            &mut s,
            ProcessId(4),
            t(1),
            ProcessId(0),
            SodaMsg::MdValue(MdValueMsg::Coded {
                mid: MessageId::new(WRITER, 1),
                tag: newer,
                element: elements[4].clone(),
            }),
        );
        assert_eq!(s.stored_tag(), newer);
        let old_elements = cfg.code().encode(b"older").unwrap();
        let r = deliver(
            &mut s,
            ProcessId(4),
            t(2),
            ProcessId(1),
            SodaMsg::MdValue(MdValueMsg::Coded {
                mid: MessageId::new(WRITER, 2),
                tag: older,
                element: old_elements[4].clone(),
            }),
        );
        assert_eq!(
            s.stored_tag(),
            newer,
            "older write must not regress storage"
        );
        assert!(r.sends.iter().any(
            |(to, m)| *to == WRITER && matches!(m, SodaMsg::WriteAck { tag } if *tag == older)
        ));
    }

    #[test]
    fn registration_sends_stored_element_when_tag_is_high_enough() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 1);
        let tw = Tag::new(3, WRITER);
        deliver(
            &mut s,
            ProcessId(1),
            t(1),
            WRITER,
            full_msg(&cfg, tw, b"stored", 1),
        );
        let op = OpId::new(READER, 1);
        let r = deliver(
            &mut s,
            ProcessId(1),
            t(2),
            READER,
            read_value_msg(op, Tag::new(2, WRITER), 1),
        );
        assert_eq!(s.registered_readers(), 1);
        let to_reader: Vec<_> = r
            .sends
            .iter()
            .filter(|(to, m)| *to == READER && matches!(m, SodaMsg::CodedToReader { .. }))
            .collect();
        assert_eq!(to_reader.len(), 1);
        match &to_reader[0].1 {
            SodaMsg::CodedToReader { tag, element, .. } => {
                assert_eq!(*tag, tw);
                assert_eq!(element.index, 1);
            }
            _ => unreachable!(),
        }
        // READ-DISPERSE metadata went out to the backbone (f + 1 = 3 servers).
        let disperse = r
            .sends
            .iter()
            .filter(|(_, m)| {
                matches!(
                    m,
                    SodaMsg::MdMeta(MdMetaMsg {
                        payload: MetaPayload::ReadDisperse { .. },
                        ..
                    })
                )
            })
            .count();
        assert_eq!(disperse, 3);
        assert_eq!(s.history_len(), 1);
    }

    #[test]
    fn registration_with_higher_requested_tag_sends_nothing_until_a_write_arrives() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 2);
        let op = OpId::new(READER, 1);
        let requested = Tag::new(4, WRITER);
        let r = deliver(
            &mut s,
            ProcessId(2),
            t(1),
            READER,
            read_value_msg(op, requested, 1),
        );
        assert_eq!(s.registered_readers(), 1);
        assert!(r.sends.iter().all(|(to, _)| *to != READER));
        // A concurrent write with tag >= requested is relayed to the reader.
        let tw = Tag::new(4, ProcessId(101));
        let r = deliver(
            &mut s,
            ProcessId(2),
            t(2),
            ProcessId(101),
            full_msg(&cfg, tw, b"concurrent", 1),
        );
        assert!(r.sends.iter().any(|(to, m)| *to == READER
            && matches!(m, SodaMsg::CodedToReader { tag, .. } if *tag == tw)));
    }

    #[test]
    fn read_complete_unregisters_and_cleans_history() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 0);
        let op = OpId::new(READER, 1);
        deliver(
            &mut s,
            ProcessId(0),
            t(1),
            READER,
            read_value_msg(op, Tag::INITIAL, 1),
        );
        assert_eq!(s.registered_readers(), 1);
        assert!(s.history_len() > 0);
        deliver(
            &mut s,
            ProcessId(0),
            t(2),
            READER,
            read_complete_msg(op, Tag::INITIAL, 2),
        );
        assert_eq!(s.registered_readers(), 0);
        assert_eq!(s.history_len(), 0);
    }

    #[test]
    fn read_complete_before_registration_leaves_marker_and_prevents_registration() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 0);
        let op = OpId::new(READER, 7);
        deliver(
            &mut s,
            ProcessId(0),
            t(1),
            READER,
            read_complete_msg(op, Tag::INITIAL, 1),
        );
        assert_eq!(s.registered_readers(), 0);
        assert_eq!(s.history_len(), 1, "marker (t0, s, r) present");
        // The late registration is ignored and the marker is cleaned up.
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(2),
            READER,
            read_value_msg(op, Tag::INITIAL, 2),
        );
        assert_eq!(s.registered_readers(), 0);
        assert_eq!(s.history_len(), 0);
        assert!(r.sends.iter().all(|(to, _)| *to != READER));
    }

    #[test]
    fn k_read_disperse_reports_unregister_the_reader() {
        let cfg = config(5, 2); // k = 3
        let mut s = server(&cfg, 4); // outside backbone; no local element sent for high tags
        let op = OpId::new(READER, 1);
        let requested = Tag::new(2, WRITER);
        deliver(
            &mut s,
            ProcessId(4),
            t(1),
            READER,
            read_value_msg(op, requested, 1),
        );
        assert_eq!(s.registered_readers(), 1);
        // Reports that servers 0 and 1 sent the element of tag (2, w).
        for (i, rank) in [0usize, 1].iter().enumerate() {
            deliver(
                &mut s,
                ProcessId(4),
                t(2),
                ProcessId(*rank as u32),
                read_disperse_msg(requested, *rank, op, i as u64 + 1),
            );
        }
        assert_eq!(s.registered_readers(), 1, "only 2 of k=3 elements reported");
        deliver(
            &mut s,
            ProcessId(4),
            t(3),
            ProcessId(2),
            read_disperse_msg(requested, 2, op, 3),
        );
        assert_eq!(s.registered_readers(), 0, "k distinct senders reached");
        assert_eq!(s.history_len(), 0, "history for the reader cleaned up");
    }

    #[test]
    fn disperse_counts_require_distinct_servers_and_matching_tag() {
        let cfg = config(5, 2); // k = 3
        let mut s = server(&cfg, 4);
        let op = OpId::new(READER, 1);
        let tag_a = Tag::new(2, WRITER);
        let tag_b = Tag::new(3, WRITER);
        deliver(
            &mut s,
            ProcessId(4),
            t(1),
            READER,
            read_value_msg(op, tag_a, 1),
        );
        // Same server reported twice and a report for a different tag: neither
        // completes the count for tag_a.
        deliver(
            &mut s,
            ProcessId(4),
            t(2),
            ProcessId(0),
            read_disperse_msg(tag_a, 0, op, 1),
        );
        deliver(
            &mut s,
            ProcessId(4),
            t(2),
            ProcessId(0),
            read_disperse_msg(tag_a, 0, op, 2),
        );
        deliver(
            &mut s,
            ProcessId(4),
            t(2),
            ProcessId(1),
            read_disperse_msg(tag_b, 1, op, 3),
        );
        assert_eq!(s.registered_readers(), 1);
    }

    #[test]
    fn duplicate_md_value_messages_are_idempotent() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 0);
        let tag = Tag::new(1, WRITER);
        let msg = full_msg(&cfg, tag, b"dup", 1);
        let first = deliver(&mut s, ProcessId(0), t(1), WRITER, msg.clone());
        let second = deliver(&mut s, ProcessId(0), t(2), WRITER, msg);
        assert!(first.sends.len() > second.sends.len());
        assert!(
            second.sends.is_empty(),
            "duplicate produces no relays or acks"
        );
        assert_eq!(s.md_tombstones(), 1);
    }

    #[test]
    fn corrupted_disk_affects_only_local_reads_not_relays() {
        let layout = Layout::new((0..7u32).map(ProcessId).collect(), 2);
        let cfg = SodaConfig::soda_err(layout, 1);
        let good_element = cfg.code().encode(b"protected value").unwrap()[0].clone();
        let mut s = ServerProcess::new(cfg.clone(), 0, &value_from(b"protected value".to_vec()))
            .with_disk_fault(DiskFaultModel::Always);
        assert_eq!(s.element, good_element, "storage itself is not corrupted");

        // Local read path (registration with a satisfied tag): corrupted.
        let op = OpId::new(READER, 1);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            READER,
            read_value_msg(op, Tag::INITIAL, 1),
        );
        let sent = r
            .sends
            .iter()
            .find_map(|(to, m)| match (to, m) {
                (to, SodaMsg::CodedToReader { element, .. }) if *to == READER => {
                    Some(element.clone())
                }
                _ => None,
            })
            .expect("element sent to reader");
        assert_ne!(sent.data, good_element.data, "local disk read is corrupted");

        // Relay path (concurrent write delivery): not corrupted.
        let tw = Tag::new(1, WRITER);
        let relayed_value = b"a concurrent write".to_vec();
        let expected = cfg.code().encode(&relayed_value).unwrap()[0].clone();
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(2),
            WRITER,
            SodaMsg::MdValue(MdValueMsg::Full {
                mid: MessageId::new(WRITER, 1),
                tag: tw,
                value: value_from(relayed_value),
            }),
        );
        let relayed = r
            .sends
            .iter()
            .find_map(|(to, m)| match (to, m) {
                (to, SodaMsg::CodedToReader { element, .. }) if *to == READER => {
                    Some(element.clone())
                }
                _ => None,
            })
            .expect("relayed element sent to registered reader");
        assert_eq!(
            relayed.data, expected.data,
            "relayed elements are never corrupted"
        );
    }

    #[test]
    fn client_messages_are_ignored_by_servers() {
        let cfg = config(3, 1);
        let mut s = server(&cfg, 0);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            ProcessId::ENV,
            SodaMsg::InvokeRead,
        );
        assert!(r.sends.is_empty());
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            ProcessId::ENV,
            SodaMsg::InvokeWrite(value_from(vec![1])),
        );
        assert!(r.sends.is_empty());
    }
}
