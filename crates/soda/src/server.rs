//! The SODA server automaton (Fig. 5, with the Fig. 6 modification for
//! SODAerr).
//!
//! Each server stores exactly one `(tag, coded element)` pair — that is where
//! the `n/(n−f)` storage optimality comes from — plus metadata:
//!
//! * `Rc` — the set of registered readers `(r, t_r)` currently being served;
//! * `H`  — a set of `(tag, server, reader)` triples recording which servers
//!   have sent which coded elements to which readers (fed by the
//!   READ-DISPERSE messages), used to decide when a registered reader has
//!   certainly received enough elements and can be unregistered, even if the
//!   reader itself crashed (Theorem 5.5: no server relays forever).
//!
//! The server participates in both message-disperse primitives: it relays the
//! MD-VALUE dispersal of writes and the MD-META dispersal of READ-VALUE /
//! READ-COMPLETE / READ-DISPERSE metadata.
//!
//! # Repair (crash recovery)
//!
//! A crashed server is replaced by a **fresh process with empty state**
//! ([`ServerProcess::replacement`]) that must re-acquire a valid
//! `(tag, coded element)` pair before it may serve get queries again — the
//! paper's §V discussion and its RADON sequel. The repair procedure is
//! deliberately *a read that re-encodes*: the replacement runs the reader
//! automaton of Fig. 4 against the survivors (read-get majority → READ-VALUE
//! registration → collect `k` / `k + 2e` coded elements → decode), then
//! re-encodes **its own** coded element from the decoded value via
//! `encode_one` and adopts the pair. Registration means survivors relay the
//! elements of concurrent writes to the repairing server exactly as they
//! would to a reader, so repair inherits the liveness of Theorem 5.1 and the
//! quorum-intersection safety of reads: the adopted tag is at least the tag
//! of every write that completed before the repair started.
//!
//! While the repair is in flight the replacement:
//!
//! * answers **no** `write-get` / `read-get` queries (its `t0` tag is stale;
//!   an answer could poison a majority's `max` and regress tags) — with at
//!   most `f` servers dead *or under repair*, `n − f ≥ ⌈(n+1)/2⌉` full
//!   replicas still answer, so clients stay live;
//! * fully participates in both message-disperse relays, acks MD-VALUE
//!   deliveries (it really stores those elements), and registers readers —
//!   but defers serving its stored element until the repair is done.
//!
//! Its outgoing [`MessageId`]s are offset by the repair epoch so they can
//! never collide with the tombstones survivors hold for the previous
//! incarnation's dispersals.

use crate::config::{DiskFaultModel, SodaConfig};
use crate::messages::{MetaPayload, OpId, SodaMsg};
use soda_protocol::md::{md_meta_send, MdMetaRelay, MdValueMsg, MdValueRelay, MessageId};
use soda_protocol::{QuorumTracker, Tag, Value};
use soda_rs_code::CodedElement;
use soda_simnet::{Context, Process, ProcessId, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Phase of an in-flight repair (the reader automaton run by a replacement
/// server).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairPhase {
    /// Waiting for a majority of `read-get` responses from the survivors.
    Get,
    /// Registered with the survivors; accumulating coded elements.
    Value,
    /// Repair finished; the server is a full replica again.
    Done,
    /// The retry budget ran out with the survivors still unreachable (e.g. a
    /// partition that outlived every retry). The replacement halted itself:
    /// the rank is plain dead again and can be repaired anew.
    Failed,
}

/// Ticks between repair retries. Comfortably above one network round trip,
/// so a clean-path repair completes before the first retry fires (the timer
/// then finds the repair done and does nothing).
pub(crate) const REPAIR_RETRY_INTERVAL: u64 = 400;
/// Total attempts (first try + retries) before a repair gives up. The
/// product with [`REPAIR_RETRY_INTERVAL`] bounds how long a repair survives
/// a partition — long enough to straddle the heal of any window the
/// exploration harness samples, short enough that `run_to_quiescence`
/// terminates when survivors never come back.
pub(crate) const REPAIR_MAX_ATTEMPTS: u32 = 8;
/// Timer token of the repair retry loop.
const REPAIR_RETRY_TOKEN: u64 = u64::MAX;

/// Progress and cost accounting of a replacement server's repair.
#[derive(Clone, Debug)]
pub struct RepairStatus {
    /// Current phase.
    pub phase: RepairPhase,
    /// When the repair started (the replacement's `on_start`).
    pub started_at: SimTime,
    /// When the repair finished, if it has.
    pub completed_at: Option<SimTime>,
    /// Bytes of coded-element data received for the repair — the repair
    /// bandwidth. Bounded by `n · ⌈size/k⌉` plus relayed concurrent writes.
    pub traffic_bytes: u64,
    /// The tag whose value was decoded and re-encoded, once done.
    pub repaired_tag: Option<Tag>,
}

/// Internal repair state machine of a replacement server.
struct RepairState {
    /// The repair's operation id (unique per incarnation via the epoch).
    op: OpId,
    phase: RepairPhase,
    get_tracker: QuorumTracker<Tag>,
    /// `t_r`: the tag selected after the get phase.
    requested: Option<Tag>,
    /// Elements accumulated, grouped by tag and keyed by sender rank.
    collected: BTreeMap<Tag, BTreeMap<usize, CodedElement>>,
    started_at: SimTime,
    completed_at: Option<SimTime>,
    traffic_bytes: u64,
    repaired_tag: Option<Tag>,
    /// Fan-out attempts so far (the initial send counts as one).
    attempts: u32,
}

impl RepairState {
    fn status(&self) -> RepairStatus {
        RepairStatus {
            phase: self.phase,
            started_at: self.started_at,
            completed_at: self.completed_at,
            traffic_bytes: self.traffic_bytes,
            repaired_tag: self.repaired_tag,
        }
    }
}

/// A SODA / SODAerr server process.
pub struct ServerProcess {
    config: Arc<SodaConfig>,
    my_rank: usize,
    /// Locally stored `(t, c_s)` pair.
    tag: Tag,
    element: CodedElement,
    /// `Rc`: registered readers and the tag each requested.
    registered: BTreeMap<OpId, Tag>,
    /// `H`: the `(tag, sender rank, reader op)` triples of the paper, indexed
    /// by reader op. Every query the protocol makes is per-op (count distinct
    /// senders of one tag, drop a finished read's triples, check the
    /// READ-COMPLETE marker), so the per-op index makes those O(own triples)
    /// instead of a scan over every in-flight read's entries — the scan is
    /// quadratic in long-lived clusters where stale triples accumulate.
    history: BTreeMap<OpId, Vec<(Tag, usize)>>,
    /// Relay state of the MD-VALUE primitive.
    md_value: MdValueRelay,
    /// Relay state of the MD-META primitive.
    md_meta: MdMetaRelay,
    /// Counter for this server's own MD-META invocations (READ-DISPERSE).
    md_counter: u64,
    /// Local-disk fault model (SODAerr experiments mark some servers bad).
    disk_fault: DiskFaultModel,
    /// Ablation switch: when `false`, the server does not relay the elements
    /// of concurrent writes to registered readers (Fig. 5, response 3, lines
    /// 4–8 disabled). Used by the `ablation_relay` experiment to demonstrate
    /// that reader registration + relaying is what makes reads live under
    /// concurrent writes.
    relay_enabled: bool,
    /// Repair state machine, present on replacement servers. Stays around
    /// after completion (`RepairPhase::Done`) so metrics remain inspectable.
    repair: Option<RepairState>,
    /// Scratch for the reader fan-out of `on_md_value_deliver`, reused across
    /// deliveries so the per-message hot path does not allocate.
    scratch_interested: Vec<OpId>,
}

impl ServerProcess {
    /// Creates the server with the given rank, storing the coded element of
    /// the initial value `v0` under the initial tag `t0`.
    pub fn new(config: Arc<SodaConfig>, my_rank: usize, initial_value: &Value) -> Self {
        let element = config
            .code()
            .encode_one(initial_value, my_rank)
            .expect("rank is within 0..n by construction");
        ServerProcess {
            config,
            my_rank,
            tag: Tag::INITIAL,
            element,
            registered: BTreeMap::new(),
            history: BTreeMap::new(),
            md_value: MdValueRelay::new(my_rank),
            md_meta: MdMetaRelay::new(my_rank),
            md_counter: 0,
            disk_fault: DiskFaultModel::None,
            relay_enabled: true,
            repair: None,
            scratch_interested: Vec::new(),
        }
    }

    /// Creates a **replacement** for a crashed server: same rank, empty state.
    /// On start it runs the repair procedure (see the module docs) against the
    /// survivors and only then behaves like a full replica. `epoch` counts the
    /// incarnations of this rank (1 for the first replacement) and must be
    /// distinct per incarnation: it namespaces the replacement's MD message
    /// ids and its repair operation id away from anything the previous
    /// incarnation sent, so survivors' deduplication tombstones cannot
    /// swallow the new dispersals.
    pub fn replacement(config: Arc<SodaConfig>, my_rank: usize, epoch: u64) -> Self {
        let self_pid = config.layout().server(my_rank);
        let majority = config.layout().majority();
        ServerProcess {
            config,
            my_rank,
            tag: Tag::INITIAL,
            element: CodedElement::new(my_rank, Vec::new()),
            registered: BTreeMap::new(),
            history: BTreeMap::new(),
            md_value: MdValueRelay::new(my_rank),
            md_meta: MdMetaRelay::new(my_rank),
            md_counter: epoch << 32,
            disk_fault: DiskFaultModel::None,
            relay_enabled: true,
            repair: Some(RepairState {
                op: OpId::new(self_pid, epoch),
                phase: RepairPhase::Get,
                get_tracker: QuorumTracker::new(majority),
                requested: None,
                collected: BTreeMap::new(),
                started_at: SimTime::ZERO,
                completed_at: None,
                traffic_bytes: 0,
                repaired_tag: None,
                attempts: 0,
            }),
            scratch_interested: Vec::new(),
        }
    }

    /// Marks this server's local disk as error-prone: every element it reads
    /// from "disk" during the read-value phase is silently corrupted.
    pub fn with_disk_fault(mut self, fault: DiskFaultModel) -> Self {
        self.disk_fault = fault;
        self
    }

    /// Disables relaying of concurrent writes to registered readers
    /// (ablation only — this breaks the liveness argument of Theorem 5.1).
    pub fn with_relay_disabled(mut self) -> Self {
        self.relay_enabled = false;
        self
    }

    /// The tag of the locally stored element.
    pub fn stored_tag(&self) -> Tag {
        self.tag
    }

    /// Number of bytes of coded-element data stored locally (the storage cost
    /// contribution of this server, un-normalized).
    pub fn stored_bytes(&self) -> usize {
        self.element.data.len()
    }

    /// The locally stored coded element.
    pub fn stored_element(&self) -> &CodedElement {
        &self.element
    }

    /// Number of currently registered readers (`|Rc|`).
    pub fn registered_readers(&self) -> usize {
        self.registered.len()
    }

    /// Number of entries in the history set `H`.
    pub fn history_len(&self) -> usize {
        self.history.values().map(Vec::len).sum()
    }

    /// Number of message-id tombstones retained by the two message-disperse
    /// relays (metadata only; see Theorem 3.2).
    pub fn md_tombstones(&self) -> usize {
        self.md_value.tombstones() + self.md_meta.tombstones()
    }

    /// Whether this server is a replacement whose repair has not finished.
    /// While true the server answers no get queries and is still "dead" for
    /// the purposes of the dynamic fault-tolerance budget.
    pub fn is_repairing(&self) -> bool {
        matches!(
            &self.repair,
            Some(r) if r.phase != RepairPhase::Done && r.phase != RepairPhase::Failed
        )
    }

    /// Whether this replacement gave up: the retry budget ran out with the
    /// survivors unreachable. The process has halted itself, so the rank is
    /// plain dead and a later `repair_server_at` can try again.
    pub fn repair_failed(&self) -> bool {
        matches!(&self.repair, Some(r) if r.phase == RepairPhase::Failed)
    }

    /// Repair progress and cost accounting, if this server is (or was) a
    /// replacement.
    pub fn repair_status(&self) -> Option<RepairStatus> {
        self.repair.as_ref().map(RepairState::status)
    }

    fn server_pid(&self, rank: usize) -> ProcessId {
        self.config.layout().server(rank)
    }

    fn next_mid(&mut self) -> MessageId {
        self.md_counter += 1;
        MessageId::new(self.server_pid(self.my_rank), self.md_counter)
    }

    /// Reads the locally stored element "from disk", applying the configured
    /// disk-fault model (SODAerr threat model: corruption only on local disk
    /// reads performed for the read-value phase).
    fn local_disk_read(&self) -> CodedElement {
        let mut element = self.element.clone();
        if self.disk_fault.corrupts() {
            let data = element.data.make_mut();
            for byte in data.iter_mut() {
                *byte ^= 0x5A;
            }
            // An all-zero element would still differ; also perturb the first
            // byte deterministically so even empty payloads change shape.
            if let Some(first) = data.first_mut() {
                *first = first.wrapping_add(1);
            }
        }
        element
    }

    /// Sends `(tag, element)` to the reader of `op` and performs the
    /// bookkeeping the paper attaches to that send: record the triple in `H`,
    /// disperse READ-DISPERSE to the other servers, and re-check whether the
    /// reader can be unregistered.
    fn send_element_to_reader(
        &mut self,
        op: OpId,
        tag: Tag,
        element: CodedElement,
        ctx: &mut Context<'_, SodaMsg>,
    ) {
        ctx.send(op.client, SodaMsg::CodedToReader { op, tag, element });
        Self::record_triple(self.history.entry(op).or_default(), (tag, self.my_rank));
        let mid = self.next_mid();
        let payload = MetaPayload::ReadDisperse {
            tag,
            server_rank: self.my_rank,
            op,
        };
        for dispatch in md_meta_send(self.config.layout(), mid, payload) {
            let dest = self.server_pid(dispatch.to_rank);
            ctx.send(dest, SodaMsg::MdMeta(dispatch.msg));
        }
        self.maybe_unregister(tag, op);
    }

    /// Adds one `(tag, sender rank)` triple to a reader's history entry,
    /// preserving set semantics. A reader's entry holds at most one triple
    /// per (sender, tag) — a handful of elements — so a linear dedup scan
    /// over a flat `Vec` beats a tree set and its per-node allocations.
    fn record_triple(triples: &mut Vec<(Tag, usize)>, triple: (Tag, usize)) {
        if !triples.contains(&triple) {
            triples.push(triple);
        }
    }

    /// Fig. 5 lines 30-37 (with the Fig. 6 threshold): once `H` records that
    /// at least `k` (SODA) or `k + 2e` (SODAerr) distinct servers have sent the
    /// element of some tag to reader `op`, unregister the reader and drop its
    /// history entries.
    fn maybe_unregister(&mut self, tag: Tag, op: OpId) {
        if !self.registered.contains_key(&op) {
            return;
        }
        let sent_count = self.history.get(&op).map_or(0, |triples| {
            triples.iter().filter(|(t, _)| *t == tag).count()
        });
        if sent_count >= self.config.read_threshold() {
            self.registered.remove(&op);
            self.history.remove(&op);
        }
    }

    /// Handles `md-value-deliver(t_w, c_s)`: relay to registered readers,
    /// update local storage if the tag is newer, and acknowledge the writer
    /// (Fig. 5, response 3).
    fn on_md_value_deliver(
        &mut self,
        tag: Tag,
        element: CodedElement,
        ctx: &mut Context<'_, SodaMsg>,
    ) {
        let mut interested = std::mem::take(&mut self.scratch_interested);
        if self.relay_enabled {
            interested.extend(
                self.registered
                    .iter()
                    .filter(|&(_, &tr)| tag >= tr)
                    .map(|(&op, _)| op),
            );
        }
        for &op in &interested {
            // Relayed elements come straight from memory, so the disk-fault
            // model does not apply here.
            self.send_element_to_reader(op, tag, element.clone(), ctx);
        }
        interested.clear();
        self.scratch_interested = interested;
        if tag > self.tag {
            self.tag = tag;
            self.element = element;
        }
        ctx.send(tag.writer, SodaMsg::WriteAck { tag });
    }

    /// Handles delivery of a READ-VALUE registration (Fig. 5, response 5).
    fn on_read_value(&mut self, op: OpId, requested: Tag, ctx: &mut Context<'_, SodaMsg>) {
        // If the READ-COMPLETE marker `(t0, s, r)` is already present, the read
        // finished before its registration arrived here: drop the stale
        // bookkeeping and do not register.
        let marker = (Tag::INITIAL, self.my_rank);
        if self.history.get(&op).is_some_and(|t| t.contains(&marker)) {
            self.history.remove(&op);
            return;
        }
        self.registered.insert(op, requested);
        // A replacement under repair has no valid element yet: register the
        // reader (so concurrent writes are relayed to it) but defer serving
        // the stored element until the repair completes.
        if !self.is_repairing() && self.tag >= requested {
            let tag = self.tag;
            let element = self.local_disk_read();
            self.send_element_to_reader(op, tag, element, ctx);
        }
    }

    /// Handles delivery of a READ-COMPLETE (Fig. 5, response 6).
    fn on_read_complete(&mut self, op: OpId) {
        if self.registered.remove(&op).is_some() {
            self.history.remove(&op);
        } else {
            // Registration has not arrived yet; leave a marker so the later
            // READ-VALUE is ignored instead of re-registering a finished read.
            Self::record_triple(
                self.history.entry(op).or_default(),
                (Tag::INITIAL, self.my_rank),
            );
        }
    }

    /// Handles delivery of a READ-DISPERSE report (Fig. 5, response 7 /
    /// Fig. 6 for SODAerr).
    fn on_read_disperse(&mut self, tag: Tag, server_rank: usize, op: OpId) {
        Self::record_triple(self.history.entry(op).or_default(), (tag, server_rank));
        self.maybe_unregister(tag, op);
    }

    /// Kicks off the repair read: query every survivor for its stored tag,
    /// and arm the retry timer that makes the repair survive partition/heal
    /// cycles (a lost fan-out is re-sent until the survivors answer or the
    /// attempt budget runs out).
    fn begin_repair(&mut self, ctx: &mut Context<'_, SodaMsg>) {
        let op = {
            let Some(repair) = self.repair.as_mut() else {
                return;
            };
            if repair.phase != RepairPhase::Get {
                return;
            }
            repair.started_at = ctx.now();
            repair.attempts = 1;
            repair.op
        };
        for rank in 0..self.config.n() {
            if rank != self.my_rank {
                ctx.send(self.server_pid(rank), SodaMsg::ReadGet { op });
            }
        }
        ctx.set_timer(REPAIR_RETRY_INTERVAL, REPAIR_RETRY_TOKEN);
    }

    /// Retry tick of an in-flight repair. Re-sends the current phase's
    /// fan-out (all repair messages are idempotent: trackers and the element
    /// map deduplicate, and survivors re-register the same op id), or gives
    /// up once the attempt budget is exhausted — the replacement then halts,
    /// reverting the rank to plain dead so the crash-budget slot can be
    /// reclaimed by a later repair.
    fn on_repair_retry(&mut self, ctx: &mut Context<'_, SodaMsg>) {
        enum Step {
            ResendGet(OpId),
            ResendRegister(OpId, Tag),
            GiveUp,
        }
        let step = {
            let Some(repair) = self.repair.as_mut() else {
                return;
            };
            match repair.phase {
                RepairPhase::Done | RepairPhase::Failed => return,
                _ if repair.attempts >= REPAIR_MAX_ATTEMPTS => {
                    repair.phase = RepairPhase::Failed;
                    Step::GiveUp
                }
                RepairPhase::Get => {
                    repair.attempts += 1;
                    Step::ResendGet(repair.op)
                }
                RepairPhase::Value => {
                    repair.attempts += 1;
                    Step::ResendRegister(repair.op, repair.requested.unwrap_or(Tag::INITIAL))
                }
            }
        };
        match step {
            Step::GiveUp => {
                ctx.halt();
                return;
            }
            Step::ResendGet(op) => {
                for rank in 0..self.config.n() {
                    if rank != self.my_rank {
                        ctx.send(self.server_pid(rank), SodaMsg::ReadGet { op });
                    }
                }
            }
            Step::ResendRegister(op, tr) => {
                // A fresh message id: the survivors' tombstones for the
                // earlier dispersal must not swallow the re-registration.
                let mid = self.next_mid();
                let payload = MetaPayload::ReadValue { op, tag: tr };
                for dispatch in md_meta_send(self.config.layout(), mid, payload) {
                    let dest = self.server_pid(dispatch.to_rank);
                    ctx.send(dest, SodaMsg::MdMeta(dispatch.msg));
                }
            }
        }
        ctx.set_timer(REPAIR_RETRY_INTERVAL, REPAIR_RETRY_TOKEN);
    }

    /// Handles a `read-get` response during repair: once a majority answered,
    /// register with the survivors under the highest tag seen.
    fn on_repair_get_resp(
        &mut self,
        from: ProcessId,
        op: OpId,
        tag: Tag,
        ctx: &mut Context<'_, SodaMsg>,
    ) {
        let tr = {
            let Some(repair) = self.repair.as_mut() else {
                return;
            };
            if repair.phase != RepairPhase::Get || repair.op != op {
                return;
            }
            repair.get_tracker.record(from, tag);
            if !repair.get_tracker.is_complete() {
                return;
            }
            let tr = repair
                .get_tracker
                .max_response()
                .copied()
                .unwrap_or(Tag::INITIAL);
            repair.requested = Some(tr);
            repair.phase = RepairPhase::Value;
            tr
        };
        let mid = self.next_mid();
        let payload = MetaPayload::ReadValue { op, tag: tr };
        for dispatch in md_meta_send(self.config.layout(), mid, payload) {
            let dest = self.server_pid(dispatch.to_rank);
            ctx.send(dest, SodaMsg::MdMeta(dispatch.msg));
        }
    }

    /// Handles a coded element sent to the repairing server (a survivor's
    /// stored element or the relay of a concurrent write).
    fn on_repair_element(
        &mut self,
        op: OpId,
        tag: Tag,
        element: CodedElement,
        ctx: &mut Context<'_, SodaMsg>,
    ) {
        {
            let Some(repair) = self.repair.as_mut() else {
                return;
            };
            if repair.phase != RepairPhase::Value || repair.op != op {
                return;
            }
            repair.traffic_bytes += element.data.len() as u64;
            let tr = repair.requested.unwrap_or(Tag::INITIAL);
            if tag < tr {
                return;
            }
            repair
                .collected
                .entry(tag)
                .or_default()
                .insert(element.index, element);
        }
        self.try_finish_repair(ctx);
    }

    /// Decodes once enough elements of one tag are collected, re-encodes this
    /// rank's element, adopts the pair, and flushes deferred reader service.
    fn try_finish_repair(&mut self, ctx: &mut Context<'_, SodaMsg>) {
        let threshold = self.config.read_threshold();
        let candidate = {
            let Some(repair) = self.repair.as_ref() else {
                return;
            };
            repair
                .collected
                .iter()
                .rev()
                .find(|(_, elems)| elems.len() >= threshold)
                .map(|(tag, elems)| (*tag, elems.values().cloned().collect::<Vec<_>>()))
        };
        let Some((tag, elements)) = candidate else {
            return;
        };
        let value = match self.config.decode(&elements) {
            Ok(value) => value,
            // Over-budget corruption (SODAerr): keep collecting, relays of
            // concurrent writes may still complete the repair.
            Err(_) => return,
        };
        let my_element = self
            .config
            .code()
            .encode_one(&value, self.my_rank)
            .expect("rank is within 0..n by construction");
        // Adopt monotonically: a concurrent write may already have installed
        // a newer pair via md-value-deliver while the repair was in flight.
        if tag >= self.tag {
            self.tag = tag;
            self.element = my_element;
        }
        let (op, tr) = {
            let repair = self.repair.as_mut().expect("checked above");
            repair.phase = RepairPhase::Done;
            repair.completed_at = Some(ctx.now());
            repair.repaired_tag = Some(tag);
            repair.collected.clear();
            (repair.op, repair.requested.unwrap_or(Tag::INITIAL))
        };
        // read-complete: let the survivors unregister the repair.
        let mid = self.next_mid();
        let payload = MetaPayload::ReadComplete { op, tag: tr };
        for dispatch in md_meta_send(self.config.layout(), mid, payload) {
            let dest = self.server_pid(dispatch.to_rank);
            ctx.send(dest, SodaMsg::MdMeta(dispatch.msg));
        }
        // Serve the readers that registered while the repair was in flight
        // and were deferred (skipping the repair's own self-registration,
        // which the READ-COMPLETE above cleans up).
        let interested: Vec<OpId> = self
            .registered
            .iter()
            .filter(|&(&o, &treq)| o != op && self.tag >= treq)
            .map(|(&o, _)| o)
            .collect();
        for reader_op in interested {
            let tag = self.tag;
            let element = self.local_disk_read();
            self.send_element_to_reader(reader_op, tag, element, ctx);
        }
    }
}

impl Process<SodaMsg> for ServerProcess {
    fn on_start(&mut self, ctx: &mut Context<'_, SodaMsg>) {
        if self.is_repairing() {
            self.begin_repair(ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, SodaMsg>) {
        if token == REPAIR_RETRY_TOKEN {
            self.on_repair_retry(ctx);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: SodaMsg, ctx: &mut Context<'_, SodaMsg>) {
        match msg {
            // A replacement under repair stays silent on tag queries: its
            // `Tag::INITIAL` could lower a writer's (or reader's) majority
            // max below a completed write's tag and break real-time order.
            // With at most `f` dead-or-repairing servers, `n − f` full
            // replicas still answer, which meets both the majority and the
            // `k + 2e` read threshold.
            SodaMsg::WriteGet { op } => {
                if self.is_repairing() {
                    return;
                }
                ctx.send(from, SodaMsg::WriteGetResp { op, tag: self.tag });
            }
            SodaMsg::ReadGet { op } => {
                if self.is_repairing() {
                    return;
                }
                ctx.send(from, SodaMsg::ReadGetResp { op, tag: self.tag });
            }
            SodaMsg::ReadGetResp { op, tag } => {
                self.on_repair_get_resp(from, op, tag, ctx);
            }
            SodaMsg::CodedToReader { op, tag, element } => {
                self.on_repair_element(op, tag, element, ctx);
            }
            SodaMsg::MdValue(md_msg) => {
                let config = &self.config;
                let deliver = match md_msg {
                    MdValueMsg::Full { mid, tag, value } => self.md_value.on_full_with(
                        config.layout(),
                        config.code().as_ref(),
                        mid,
                        tag,
                        &value,
                        |dispatch| {
                            let dest = config.layout().server(dispatch.to_rank);
                            ctx.send(dest, SodaMsg::MdValue(dispatch.msg));
                        },
                    ),
                    MdValueMsg::Coded { mid, tag, element } => {
                        self.md_value.on_coded(mid, tag, element)
                    }
                };
                if let Some((tag, element)) = deliver {
                    self.on_md_value_deliver(tag, element, ctx);
                }
            }
            SodaMsg::MdMeta(meta) => {
                let config = &self.config;
                let deliver = self.md_meta.on_meta_with(
                    config.layout(),
                    meta.mid,
                    &meta.payload,
                    |dispatch| {
                        let dest = config.layout().server(dispatch.to_rank);
                        ctx.send(dest, SodaMsg::MdMeta(dispatch.msg));
                    },
                );
                if let Some(payload) = deliver {
                    match payload {
                        MetaPayload::ReadValue { op, tag } => self.on_read_value(op, tag, ctx),
                        MetaPayload::ReadComplete { op, .. } => self.on_read_complete(op),
                        MetaPayload::ReadDisperse {
                            tag,
                            server_rank,
                            op,
                        } => self.on_read_disperse(tag, server_rank, op),
                    }
                }
            }
            // Servers ignore client-side messages.
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_protocol::md::MdMetaMsg;
    use soda_protocol::{value_from, Layout};
    use soda_simnet::testkit::deliver;
    use soda_simnet::SimTime;

    const WRITER: ProcessId = ProcessId(100);
    const READER: ProcessId = ProcessId(200);

    fn config(n: usize, f: usize) -> Arc<SodaConfig> {
        let layout = Layout::new((0..n as u32).map(ProcessId).collect(), f);
        SodaConfig::soda(layout)
    }

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn server(cfg: &Arc<SodaConfig>, rank: usize) -> ServerProcess {
        ServerProcess::new(cfg.clone(), rank, &value_from(b"initial".to_vec()))
    }

    fn full_msg(_cfg: &Arc<SodaConfig>, tag: Tag, value: &[u8], counter: u64) -> SodaMsg {
        SodaMsg::MdValue(MdValueMsg::Full {
            mid: MessageId::new(tag.writer, counter),
            tag,
            value: value_from(value.to_vec()),
        })
    }

    fn read_value_msg(op: OpId, tag: Tag, counter: u64) -> SodaMsg {
        SodaMsg::MdMeta(MdMetaMsg {
            mid: MessageId::new(op.client, counter),
            payload: MetaPayload::ReadValue { op, tag },
        })
    }

    fn read_complete_msg(op: OpId, tag: Tag, counter: u64) -> SodaMsg {
        SodaMsg::MdMeta(MdMetaMsg {
            mid: MessageId::new(op.client, counter),
            payload: MetaPayload::ReadComplete { op, tag },
        })
    }

    fn read_disperse_msg(tag: Tag, server_rank: usize, op: OpId, counter: u64) -> SodaMsg {
        SodaMsg::MdMeta(MdMetaMsg {
            mid: MessageId::new(ProcessId(server_rank as u32), counter),
            payload: MetaPayload::ReadDisperse {
                tag,
                server_rank,
                op,
            },
        })
    }

    #[test]
    fn initial_state_stores_initial_value_element() {
        let cfg = config(5, 2);
        let s = server(&cfg, 3);
        assert_eq!(s.stored_tag(), Tag::INITIAL);
        assert!(s.stored_bytes() > 0);
        assert_eq!(s.registered_readers(), 0);
        assert_eq!(s.history_len(), 0);
        assert_eq!(s.md_tombstones(), 0);
    }

    #[test]
    fn write_get_and_read_get_respond_with_stored_tag() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 0);
        let op = OpId::new(WRITER, 1);
        let r = deliver(&mut s, ProcessId(0), t(1), WRITER, SodaMsg::WriteGet { op });
        assert_eq!(r.sends.len(), 1);
        assert!(matches!(
            r.sends[0].1,
            SodaMsg::WriteGetResp { tag, .. } if tag == Tag::INITIAL
        ));
        let rop = OpId::new(READER, 1);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            READER,
            SodaMsg::ReadGet { op: rop },
        );
        assert!(matches!(r.sends[0].1, SodaMsg::ReadGetResp { .. }));
    }

    #[test]
    fn md_value_full_updates_storage_relays_and_acks() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 0);
        let tag = Tag::new(1, WRITER);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(2),
            WRITER,
            full_msg(&cfg, tag, b"value-one", 1),
        );
        assert_eq!(s.stored_tag(), tag);
        // Relays: full to ranks 1..2 (backbone), coded to ranks 3..4, plus an
        // ack back to the writer.
        let ack_count = r
            .sends
            .iter()
            .filter(|(to, m)| *to == WRITER && matches!(m, SodaMsg::WriteAck { .. }))
            .count();
        assert_eq!(ack_count, 1);
        let fulls = r
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, SodaMsg::MdValue(MdValueMsg::Full { .. })))
            .count();
        let codeds = r
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, SodaMsg::MdValue(MdValueMsg::Coded { .. })))
            .count();
        assert_eq!(fulls, 2);
        assert_eq!(codeds, 2);
    }

    #[test]
    fn older_tag_does_not_overwrite_but_still_acks() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 4); // outside the backbone: receives Coded
        let newer = Tag::new(5, WRITER);
        let older = Tag::new(2, WRITER);
        let elements = cfg.code().encode(b"newer").unwrap();
        deliver(
            &mut s,
            ProcessId(4),
            t(1),
            ProcessId(0),
            SodaMsg::MdValue(MdValueMsg::Coded {
                mid: MessageId::new(WRITER, 1),
                tag: newer,
                element: elements[4].clone(),
            }),
        );
        assert_eq!(s.stored_tag(), newer);
        let old_elements = cfg.code().encode(b"older").unwrap();
        let r = deliver(
            &mut s,
            ProcessId(4),
            t(2),
            ProcessId(1),
            SodaMsg::MdValue(MdValueMsg::Coded {
                mid: MessageId::new(WRITER, 2),
                tag: older,
                element: old_elements[4].clone(),
            }),
        );
        assert_eq!(
            s.stored_tag(),
            newer,
            "older write must not regress storage"
        );
        assert!(r.sends.iter().any(
            |(to, m)| *to == WRITER && matches!(m, SodaMsg::WriteAck { tag } if *tag == older)
        ));
    }

    #[test]
    fn registration_sends_stored_element_when_tag_is_high_enough() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 1);
        let tw = Tag::new(3, WRITER);
        deliver(
            &mut s,
            ProcessId(1),
            t(1),
            WRITER,
            full_msg(&cfg, tw, b"stored", 1),
        );
        let op = OpId::new(READER, 1);
        let r = deliver(
            &mut s,
            ProcessId(1),
            t(2),
            READER,
            read_value_msg(op, Tag::new(2, WRITER), 1),
        );
        assert_eq!(s.registered_readers(), 1);
        let to_reader: Vec<_> = r
            .sends
            .iter()
            .filter(|(to, m)| *to == READER && matches!(m, SodaMsg::CodedToReader { .. }))
            .collect();
        assert_eq!(to_reader.len(), 1);
        match &to_reader[0].1 {
            SodaMsg::CodedToReader { tag, element, .. } => {
                assert_eq!(*tag, tw);
                assert_eq!(element.index, 1);
            }
            _ => unreachable!(),
        }
        // READ-DISPERSE metadata went out to the backbone (f + 1 = 3 servers).
        let disperse = r
            .sends
            .iter()
            .filter(|(_, m)| {
                matches!(
                    m,
                    SodaMsg::MdMeta(MdMetaMsg {
                        payload: MetaPayload::ReadDisperse { .. },
                        ..
                    })
                )
            })
            .count();
        assert_eq!(disperse, 3);
        assert_eq!(s.history_len(), 1);
    }

    #[test]
    fn registration_with_higher_requested_tag_sends_nothing_until_a_write_arrives() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 2);
        let op = OpId::new(READER, 1);
        let requested = Tag::new(4, WRITER);
        let r = deliver(
            &mut s,
            ProcessId(2),
            t(1),
            READER,
            read_value_msg(op, requested, 1),
        );
        assert_eq!(s.registered_readers(), 1);
        assert!(r.sends.iter().all(|(to, _)| *to != READER));
        // A concurrent write with tag >= requested is relayed to the reader.
        let tw = Tag::new(4, ProcessId(101));
        let r = deliver(
            &mut s,
            ProcessId(2),
            t(2),
            ProcessId(101),
            full_msg(&cfg, tw, b"concurrent", 1),
        );
        assert!(r.sends.iter().any(|(to, m)| *to == READER
            && matches!(m, SodaMsg::CodedToReader { tag, .. } if *tag == tw)));
    }

    #[test]
    fn read_complete_unregisters_and_cleans_history() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 0);
        let op = OpId::new(READER, 1);
        deliver(
            &mut s,
            ProcessId(0),
            t(1),
            READER,
            read_value_msg(op, Tag::INITIAL, 1),
        );
        assert_eq!(s.registered_readers(), 1);
        assert!(s.history_len() > 0);
        deliver(
            &mut s,
            ProcessId(0),
            t(2),
            READER,
            read_complete_msg(op, Tag::INITIAL, 2),
        );
        assert_eq!(s.registered_readers(), 0);
        assert_eq!(s.history_len(), 0);
    }

    #[test]
    fn read_complete_before_registration_leaves_marker_and_prevents_registration() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 0);
        let op = OpId::new(READER, 7);
        deliver(
            &mut s,
            ProcessId(0),
            t(1),
            READER,
            read_complete_msg(op, Tag::INITIAL, 1),
        );
        assert_eq!(s.registered_readers(), 0);
        assert_eq!(s.history_len(), 1, "marker (t0, s, r) present");
        // The late registration is ignored and the marker is cleaned up.
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(2),
            READER,
            read_value_msg(op, Tag::INITIAL, 2),
        );
        assert_eq!(s.registered_readers(), 0);
        assert_eq!(s.history_len(), 0);
        assert!(r.sends.iter().all(|(to, _)| *to != READER));
    }

    #[test]
    fn k_read_disperse_reports_unregister_the_reader() {
        let cfg = config(5, 2); // k = 3
        let mut s = server(&cfg, 4); // outside backbone; no local element sent for high tags
        let op = OpId::new(READER, 1);
        let requested = Tag::new(2, WRITER);
        deliver(
            &mut s,
            ProcessId(4),
            t(1),
            READER,
            read_value_msg(op, requested, 1),
        );
        assert_eq!(s.registered_readers(), 1);
        // Reports that servers 0 and 1 sent the element of tag (2, w).
        for (i, rank) in [0usize, 1].iter().enumerate() {
            deliver(
                &mut s,
                ProcessId(4),
                t(2),
                ProcessId(*rank as u32),
                read_disperse_msg(requested, *rank, op, i as u64 + 1),
            );
        }
        assert_eq!(s.registered_readers(), 1, "only 2 of k=3 elements reported");
        deliver(
            &mut s,
            ProcessId(4),
            t(3),
            ProcessId(2),
            read_disperse_msg(requested, 2, op, 3),
        );
        assert_eq!(s.registered_readers(), 0, "k distinct senders reached");
        assert_eq!(s.history_len(), 0, "history for the reader cleaned up");
    }

    #[test]
    fn disperse_counts_require_distinct_servers_and_matching_tag() {
        let cfg = config(5, 2); // k = 3
        let mut s = server(&cfg, 4);
        let op = OpId::new(READER, 1);
        let tag_a = Tag::new(2, WRITER);
        let tag_b = Tag::new(3, WRITER);
        deliver(
            &mut s,
            ProcessId(4),
            t(1),
            READER,
            read_value_msg(op, tag_a, 1),
        );
        // Same server reported twice and a report for a different tag: neither
        // completes the count for tag_a.
        deliver(
            &mut s,
            ProcessId(4),
            t(2),
            ProcessId(0),
            read_disperse_msg(tag_a, 0, op, 1),
        );
        deliver(
            &mut s,
            ProcessId(4),
            t(2),
            ProcessId(0),
            read_disperse_msg(tag_a, 0, op, 2),
        );
        deliver(
            &mut s,
            ProcessId(4),
            t(2),
            ProcessId(1),
            read_disperse_msg(tag_b, 1, op, 3),
        );
        assert_eq!(s.registered_readers(), 1);
    }

    #[test]
    fn duplicate_md_value_messages_are_idempotent() {
        let cfg = config(5, 2);
        let mut s = server(&cfg, 0);
        let tag = Tag::new(1, WRITER);
        let msg = full_msg(&cfg, tag, b"dup", 1);
        let first = deliver(&mut s, ProcessId(0), t(1), WRITER, msg.clone());
        let second = deliver(&mut s, ProcessId(0), t(2), WRITER, msg);
        assert!(first.sends.len() > second.sends.len());
        assert!(
            second.sends.is_empty(),
            "duplicate produces no relays or acks"
        );
        assert_eq!(s.md_tombstones(), 1);
    }

    #[test]
    fn corrupted_disk_affects_only_local_reads_not_relays() {
        let layout = Layout::new((0..7u32).map(ProcessId).collect(), 2);
        let cfg = SodaConfig::soda_err(layout, 1);
        let good_element = cfg.code().encode(b"protected value").unwrap()[0].clone();
        let mut s = ServerProcess::new(cfg.clone(), 0, &value_from(b"protected value".to_vec()))
            .with_disk_fault(DiskFaultModel::Always);
        assert_eq!(s.element, good_element, "storage itself is not corrupted");

        // Local read path (registration with a satisfied tag): corrupted.
        let op = OpId::new(READER, 1);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            READER,
            read_value_msg(op, Tag::INITIAL, 1),
        );
        let sent = r
            .sends
            .iter()
            .find_map(|(to, m)| match (to, m) {
                (to, SodaMsg::CodedToReader { element, .. }) if *to == READER => {
                    Some(element.clone())
                }
                _ => None,
            })
            .expect("element sent to reader");
        assert_ne!(sent.data, good_element.data, "local disk read is corrupted");

        // Relay path (concurrent write delivery): not corrupted.
        let tw = Tag::new(1, WRITER);
        let relayed_value = b"a concurrent write".to_vec();
        let expected = cfg.code().encode(&relayed_value).unwrap()[0].clone();
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(2),
            WRITER,
            SodaMsg::MdValue(MdValueMsg::Full {
                mid: MessageId::new(WRITER, 1),
                tag: tw,
                value: value_from(relayed_value),
            }),
        );
        let relayed = r
            .sends
            .iter()
            .find_map(|(to, m)| match (to, m) {
                (to, SodaMsg::CodedToReader { element, .. }) if *to == READER => {
                    Some(element.clone())
                }
                _ => None,
            })
            .expect("relayed element sent to registered reader");
        assert_eq!(
            relayed.data, expected.data,
            "relayed elements are never corrupted"
        );
    }

    #[test]
    fn client_messages_are_ignored_by_servers() {
        let cfg = config(3, 1);
        let mut s = server(&cfg, 0);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            ProcessId::ENV,
            SodaMsg::InvokeRead,
        );
        assert!(r.sends.is_empty());
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            ProcessId::ENV,
            SodaMsg::InvokeWrite(value_from(vec![1])),
        );
        assert!(r.sends.is_empty());
    }

    /// Drives a replacement through its full repair exchange by hand:
    /// start → read-get responses → coded elements → done.
    fn run_repair(
        cfg: &Arc<SodaConfig>,
        s: &mut ServerProcess,
        epoch: u64,
        tag: Tag,
        value: &[u8],
    ) -> Vec<(ProcessId, SodaMsg)> {
        let self_pid = ProcessId(0);
        let op = OpId::new(self_pid, epoch);
        let r = soda_simnet::testkit::start(s, self_pid, t(1));
        let get_count = r
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, SodaMsg::ReadGet { op: o } if *o == op))
            .count();
        assert_eq!(get_count, cfg.n() - 1, "queries every survivor");
        // Survivors report their stored tag; majority completes the get phase.
        let mut registration = Vec::new();
        for rank in 1..=cfg.layout().majority() {
            let r = deliver(
                s,
                self_pid,
                t(2),
                ProcessId(rank as u32),
                SodaMsg::ReadGetResp { op, tag },
            );
            registration.extend(r.sends);
        }
        assert!(registration.iter().any(|(_, m)| matches!(
            m,
            SodaMsg::MdMeta(meta) if matches!(meta.payload, MetaPayload::ReadValue { op: o, tag: tr } if o == op && tr == tag)
        )), "registers with survivors under the majority max tag");
        // Survivors send their stored coded elements. `rank` doubles as the
        // sender's process id and its element index under the code's layout.
        let elements = cfg.code().encode(value).unwrap();
        let mut finish = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for rank in 1..=cfg.read_threshold() {
            let r = deliver(
                s,
                self_pid,
                t(3),
                ProcessId(rank as u32),
                SodaMsg::CodedToReader {
                    op,
                    tag,
                    element: elements[rank].clone(),
                },
            );
            finish.extend(r.sends);
        }
        finish
    }

    #[test]
    fn replacement_repairs_by_reencoding_from_survivors() {
        let cfg = config(5, 2);
        let mut s = ServerProcess::replacement(cfg.clone(), 0, 1);
        assert!(s.is_repairing());
        assert_eq!(s.stored_tag(), Tag::INITIAL);

        let tw = Tag::new(7, WRITER);
        let value = b"repaired value".to_vec();
        let finish = run_repair(&cfg, &mut s, 1, tw, &value);

        assert!(!s.is_repairing());
        assert_eq!(s.stored_tag(), tw);
        let expected = cfg.code().encode_one(&value, 0).unwrap();
        assert_eq!(s.stored_element().data, expected.data);
        // read-complete lets the survivors unregister the repair op.
        assert!(finish.iter().any(|(_, m)| matches!(
            m,
            SodaMsg::MdMeta(meta) if matches!(meta.payload, MetaPayload::ReadComplete { .. })
        )));
        let status = s.repair_status().unwrap();
        assert_eq!(status.phase, RepairPhase::Done);
        assert_eq!(status.repaired_tag, Some(tw));
        assert!(status.completed_at.is_some());
        let element_len = expected.data.len() as u64;
        assert_eq!(
            status.traffic_bytes,
            element_len * cfg.read_threshold() as u64,
            "repair bandwidth is read_threshold coded elements"
        );
    }

    #[test]
    fn under_repair_server_is_silent_on_gets_and_defers_readers() {
        let cfg = config(5, 2);
        let mut s = ServerProcess::replacement(cfg.clone(), 0, 1);

        // Tag queries get no answer: INITIAL would poison majority maxima.
        let wop = OpId::new(WRITER, 1);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            WRITER,
            SodaMsg::WriteGet { op: wop },
        );
        assert!(r.sends.is_empty());
        let rop = OpId::new(READER, 1);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            READER,
            SodaMsg::ReadGet { op: rop },
        );
        assert!(r.sends.is_empty());

        // A reader registering during the repair is recorded but not served.
        let tw = Tag::new(3, WRITER);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            READER,
            read_value_msg(rop, Tag::INITIAL, 1),
        );
        assert!(
            !r.sends
                .iter()
                .any(|(_, m)| matches!(m, SodaMsg::CodedToReader { .. })),
            "no element served while the stored element is garbage"
        );
        assert_eq!(s.registered_readers(), 1);

        // Once the repair completes the deferred reader is served.
        let finish = run_repair(&cfg, &mut s, 1, tw, b"deferred");
        let served = finish
            .iter()
            .find_map(|(to, m)| match m {
                SodaMsg::CodedToReader { op, tag, element } if *to == READER => {
                    Some((*op, *tag, element.clone()))
                }
                _ => None,
            })
            .expect("deferred reader served after repair");
        assert_eq!(served.0, rop);
        assert_eq!(served.1, tw);
        assert_eq!(
            served.2.data,
            cfg.code().encode_one(b"deferred", 0).unwrap().data
        );

        // After repair the server answers tag queries again.
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(9),
            WRITER,
            SodaMsg::WriteGet { op: wop },
        );
        assert!(matches!(r.sends[0].1, SodaMsg::WriteGetResp { tag, .. } if tag == tw));
    }

    #[test]
    fn repair_adoption_is_monotone_under_concurrent_writes() {
        let cfg = config(5, 2);
        let mut s = ServerProcess::replacement(cfg.clone(), 0, 1);

        // A concurrent write's md-value delivery lands mid-repair and is
        // stored (the relay/gossip path still reaches the replacement).
        let newer = Tag::new(9, WRITER);
        let r = deliver(
            &mut s,
            ProcessId(0),
            t(1),
            WRITER,
            full_msg(&cfg, newer, b"newer", 1),
        );
        assert!(r
            .sends
            .iter()
            .any(|(to, m)| *to == WRITER && matches!(m, SodaMsg::WriteAck { .. })));
        assert_eq!(s.stored_tag(), newer);
        assert!(
            s.is_repairing(),
            "md-value delivery does not end the repair"
        );

        // The repair then decodes an older tag; adoption must not go back.
        let older = Tag::new(4, WRITER);
        run_repair(&cfg, &mut s, 1, older, b"older value");
        assert!(!s.is_repairing());
        assert_eq!(s.stored_tag(), newer, "adoption is monotone");
    }

    #[test]
    fn replacement_epoch_namespaces_message_ids() {
        let cfg = config(5, 2);
        let epoch = 3u64;
        let mut s = ServerProcess::replacement(cfg.clone(), 0, epoch);
        let self_pid = ProcessId(0);
        let op = OpId::new(self_pid, epoch);
        soda_simnet::testkit::start(&mut s, self_pid, t(1));
        let mut sends = Vec::new();
        for rank in 1..=cfg.layout().majority() {
            let r = deliver(
                &mut s,
                self_pid,
                t(2),
                ProcessId(rank as u32),
                SodaMsg::ReadGetResp {
                    op,
                    tag: Tag::INITIAL,
                },
            );
            sends.extend(r.sends);
        }
        let mid = sends
            .iter()
            .find_map(|(_, m)| match m {
                SodaMsg::MdMeta(meta) => Some(meta.mid),
                _ => None,
            })
            .expect("repair registration dispersed");
        assert_eq!(
            mid.counter >> 32,
            epoch,
            "message ids of incarnation {epoch} cannot collide with tombstones of earlier ones"
        );
    }
}
