//! The SODA reader automaton (Fig. 4 of the paper).
//!
//! A read proceeds in three phases:
//!
//! 1. **read-get** — query all servers for their stored tags, wait for a
//!    majority, and pick the highest tag `t_r`.
//! 2. **read-value** — disperse `(READ-VALUE, (r, t_r))` through MD-META so
//!    that every non-faulty server registers the reader. Registered servers
//!    send their stored coded element (if its tag is `≥ t_r`) and keep
//!    relaying the elements of concurrent writes until the reader is
//!    unregistered. The reader accumulates elements until it holds enough for
//!    a single tag `t ≥ t_r` — `k` of them for SODA, `k + 2e` for SODAerr —
//!    and decodes.
//! 3. **read-complete** — disperse `(READ-COMPLETE, (r, t_r))` so servers can
//!    unregister the reader, then return the decoded value.
//!
//! Readers are well-formed clients: invocations that arrive while a read is in
//! flight are queued.

use crate::config::SodaConfig;
use crate::messages::{MetaPayload, OpId, SodaMsg};
use crate::record::{OpKind, OpRecord};
use soda_protocol::md::{md_meta_send, MessageId};
use soda_protocol::{QuorumTracker, Tag};
use soda_rs_code::CodedElement;
use soda_simnet::{Context, Process, ProcessId, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Phase of the in-flight read operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadPhase {
    /// No operation in flight.
    Idle,
    /// Waiting for a majority of `read-get` responses.
    Get,
    /// Registered with the servers; accumulating coded elements.
    Value,
}

/// A SODA / SODAerr reader client process.
pub struct ReaderProcess {
    config: Arc<SodaConfig>,
    self_id: ProcessId,
    phase: ReadPhase,
    pending: VecDeque<()>,
    op_seq: u64,
    md_counter: u64,
    current_op: Option<OpId>,
    requested_tag: Option<Tag>,
    invoked_at: SimTime,
    get_tracker: QuorumTracker<Tag>,
    /// Coded elements accumulated in the current read, grouped by tag and
    /// keyed by the sending server's rank (the element index).
    collected: BTreeMap<Tag, BTreeMap<usize, CodedElement>>,
    completed: Vec<OpRecord>,
    /// Count of decode attempts that failed (diagnostics; should stay 0 when
    /// the corruption budget is respected).
    decode_failures: u64,
}

impl ReaderProcess {
    /// Creates a reader. `self_id` must be the process id under which the
    /// reader is registered with the simulation.
    pub fn new(config: Arc<SodaConfig>, self_id: ProcessId) -> Self {
        let majority = config.layout().majority();
        ReaderProcess {
            config,
            self_id,
            phase: ReadPhase::Idle,
            pending: VecDeque::new(),
            op_seq: 0,
            md_counter: 0,
            current_op: None,
            requested_tag: None,
            invoked_at: SimTime::ZERO,
            get_tracker: QuorumTracker::new(majority),
            collected: BTreeMap::new(),
            completed: Vec::new(),
            decode_failures: 0,
        }
    }

    /// Operations completed so far, in completion order.
    pub fn completed_ops(&self) -> &[OpRecord] {
        &self.completed
    }

    /// Current phase.
    pub fn phase(&self) -> ReadPhase {
        self.phase
    }

    /// Whether the reader has no operation in flight and no queued invocations.
    pub fn is_idle(&self) -> bool {
        self.phase == ReadPhase::Idle && self.pending.is_empty()
    }

    /// Number of decode attempts that failed (0 unless the corruption budget
    /// was exceeded).
    pub fn decode_failures(&self) -> u64 {
        self.decode_failures
    }

    fn next_mid(&mut self) -> MessageId {
        self.md_counter += 1;
        MessageId::new(self.self_id, self.md_counter)
    }

    fn start_next(&mut self, ctx: &mut Context<'_, SodaMsg>) {
        if self.phase != ReadPhase::Idle || self.pending.pop_front().is_none() {
            return;
        }
        self.op_seq += 1;
        let op = OpId::new(self.self_id, self.op_seq);
        self.current_op = Some(op);
        self.requested_tag = None;
        self.invoked_at = ctx.now();
        self.phase = ReadPhase::Get;
        self.get_tracker = QuorumTracker::new(self.config.layout().majority());
        self.collected.clear();
        for &server in self.config.layout().servers() {
            ctx.send(server, SodaMsg::ReadGet { op });
        }
    }

    fn begin_value_phase(&mut self, ctx: &mut Context<'_, SodaMsg>) {
        let op = self.current_op.expect("value phase requires an op");
        let tr = self
            .get_tracker
            .max_response()
            .copied()
            .unwrap_or(Tag::INITIAL);
        self.requested_tag = Some(tr);
        self.phase = ReadPhase::Value;
        let mid = self.next_mid();
        let payload = MetaPayload::ReadValue { op, tag: tr };
        for dispatch in md_meta_send(self.config.layout(), mid, payload) {
            let dest = self.config.layout().server(dispatch.to_rank);
            ctx.send(dest, SodaMsg::MdMeta(dispatch.msg));
        }
    }

    fn try_decode(&mut self, ctx: &mut Context<'_, SodaMsg>) {
        let threshold = self.config.read_threshold();
        // Find the highest tag with enough elements (any qualifying tag would
        // do for correctness; the highest is chosen deterministically).
        let candidate = self
            .collected
            .iter()
            .rev()
            .find(|(_, elems)| elems.len() >= threshold)
            .map(|(tag, elems)| (*tag, elems.values().cloned().collect::<Vec<_>>()));
        let Some((tag, elements)) = candidate else {
            return;
        };
        match self.config.decode(&elements) {
            Ok(value) => self.complete(tag, value, ctx),
            Err(_) => {
                // More corrupted elements than the budget allows; keep
                // collecting (more relays may arrive) and record the failure.
                self.decode_failures += 1;
            }
        }
    }

    fn complete(&mut self, tag: Tag, value: Vec<u8>, ctx: &mut Context<'_, SodaMsg>) {
        let op = self.current_op.take().expect("completing without an op");
        let tr = self.requested_tag.take().unwrap_or(Tag::INITIAL);
        // read-complete phase: tell the servers to unregister this read.
        let mid = self.next_mid();
        let payload = MetaPayload::ReadComplete { op, tag: tr };
        for dispatch in md_meta_send(self.config.layout(), mid, payload) {
            let dest = self.config.layout().server(dispatch.to_rank);
            ctx.send(dest, SodaMsg::MdMeta(dispatch.msg));
        }
        self.completed.push(OpRecord {
            op,
            kind: OpKind::Read,
            invoked_at: self.invoked_at,
            completed_at: ctx.now(),
            tag,
            value: Some(value),
        });
        self.collected.clear();
        self.phase = ReadPhase::Idle;
        self.start_next(ctx);
    }
}

impl Process<SodaMsg> for ReaderProcess {
    fn on_message(&mut self, from: ProcessId, msg: SodaMsg, ctx: &mut Context<'_, SodaMsg>) {
        match msg {
            SodaMsg::InvokeRead => {
                self.pending.push_back(());
                self.start_next(ctx);
            }
            SodaMsg::ReadGetResp { op, tag }
                if self.phase == ReadPhase::Get && self.current_op == Some(op) =>
            {
                self.get_tracker.record(from, tag);
                if self.get_tracker.is_complete() {
                    self.begin_value_phase(ctx);
                }
            }
            SodaMsg::CodedToReader { op, tag, element }
                if self.phase == ReadPhase::Value && self.current_op == Some(op) =>
            {
                let tr = self.requested_tag.unwrap_or(Tag::INITIAL);
                if tag >= tr {
                    self.collected
                        .entry(tag)
                        .or_default()
                        .insert(element.index, element);
                    self.try_decode(ctx);
                }
            }
            // Readers ignore write-protocol traffic and stray messages.
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_protocol::md::MdMetaMsg;
    use soda_protocol::Layout;
    use soda_simnet::testkit::deliver;

    const READER: ProcessId = ProcessId(200);

    fn config(n: usize, f: usize) -> Arc<SodaConfig> {
        let layout = Layout::new((0..n as u32).map(ProcessId).collect(), f);
        SodaConfig::soda(layout)
    }

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn start_read(reader: &mut ReaderProcess) -> OpId {
        deliver(reader, READER, t(1), ProcessId::ENV, SodaMsg::InvokeRead);
        OpId::new(READER, reader.op_seq)
    }

    fn answer_get_phase(reader: &mut ReaderProcess, op: OpId, tags: &[Tag]) {
        for (i, &tag) in tags.iter().enumerate() {
            deliver(
                reader,
                READER,
                t(2),
                ProcessId(i as u32),
                SodaMsg::ReadGetResp { op, tag },
            );
        }
    }

    #[test]
    fn invoke_queries_all_servers() {
        let mut r = ReaderProcess::new(config(5, 2), READER);
        assert!(r.is_idle());
        deliver(&mut r, READER, t(1), ProcessId::ENV, SodaMsg::InvokeRead);
        assert_eq!(r.phase(), ReadPhase::Get);
    }

    #[test]
    fn majority_get_responses_trigger_read_value_registration() {
        let cfg = config(5, 2);
        let mut r = ReaderProcess::new(cfg, READER);
        let op = start_read(&mut r);
        // Two responses are not a majority of 5.
        answer_get_phase(&mut r, op, &[Tag::INITIAL, Tag::new(1, ProcessId(1))]);
        assert_eq!(r.phase(), ReadPhase::Get);
        // Third response: the reader registers via MD-META with tr = (1, p1).
        let result = deliver(
            &mut r,
            READER,
            t(3),
            ProcessId(2),
            SodaMsg::ReadGetResp {
                op,
                tag: Tag::INITIAL,
            },
        );
        assert_eq!(r.phase(), ReadPhase::Value);
        assert_eq!(result.sends.len(), 3, "READ-VALUE goes to the f+1 backbone");
        for (dest, msg) in &result.sends {
            assert!(dest.0 < 3);
            match msg {
                SodaMsg::MdMeta(MdMetaMsg {
                    payload: MetaPayload::ReadValue { op: o, tag },
                    ..
                }) => {
                    assert_eq!(*o, op);
                    assert_eq!(*tag, Tag::new(1, ProcessId(1)));
                }
                other => panic!("expected READ-VALUE, got {other:?}"),
            }
        }
    }

    #[test]
    fn read_completes_once_k_elements_of_one_tag_arrive() {
        let cfg = config(5, 2); // k = 3
        let code = cfg.code().clone();
        let mut r = ReaderProcess::new(cfg, READER);
        let op = start_read(&mut r);
        let tw = Tag::new(2, ProcessId(50));
        answer_get_phase(&mut r, op, &[tw, Tag::INITIAL, Tag::INITIAL]);
        assert_eq!(r.phase(), ReadPhase::Value);

        let value = b"the committed object value".to_vec();
        let elements = code.encode(&value).unwrap();
        // Elements for an *older* tag are ignored (below tr).
        let old = deliver(
            &mut r,
            READER,
            t(4),
            ProcessId(0),
            SodaMsg::CodedToReader {
                op,
                tag: Tag::new(1, ProcessId(50)),
                element: elements[0].clone(),
            },
        );
        assert!(old.sends.is_empty());
        // Two elements with tag tw: not enough yet.
        for (rank, element) in elements.iter().enumerate().take(2) {
            deliver(
                &mut r,
                READER,
                t(5),
                ProcessId(rank as u32),
                SodaMsg::CodedToReader {
                    op,
                    tag: tw,
                    element: element.clone(),
                },
            );
        }
        assert!(r.completed_ops().is_empty());
        // Duplicate element from the same server does not count.
        deliver(
            &mut r,
            READER,
            t(5),
            ProcessId(1),
            SodaMsg::CodedToReader {
                op,
                tag: tw,
                element: elements[1].clone(),
            },
        );
        assert!(r.completed_ops().is_empty());
        // Third distinct element completes the read.
        let done = deliver(
            &mut r,
            READER,
            t(6),
            ProcessId(4),
            SodaMsg::CodedToReader {
                op,
                tag: tw,
                element: elements[4].clone(),
            },
        );
        assert_eq!(r.completed_ops().len(), 1);
        let rec = &r.completed_ops()[0];
        assert_eq!(rec.kind, OpKind::Read);
        assert_eq!(rec.tag, tw);
        assert_eq!(rec.value.as_deref(), Some(value.as_slice()));
        assert_eq!(r.phase(), ReadPhase::Idle);
        // READ-COMPLETE is dispersed to the backbone.
        assert_eq!(done.sends.len(), 3);
        assert!(done.sends.iter().all(|(_, m)| matches!(
            m,
            SodaMsg::MdMeta(MdMetaMsg {
                payload: MetaPayload::ReadComplete { .. },
                ..
            })
        )));
        assert_eq!(r.decode_failures(), 0);
    }

    #[test]
    fn elements_of_a_newer_concurrent_write_can_serve_the_read() {
        let cfg = config(5, 2);
        let code = cfg.code().clone();
        let mut r = ReaderProcess::new(cfg, READER);
        let op = start_read(&mut r);
        answer_get_phase(&mut r, op, &[Tag::INITIAL, Tag::INITIAL, Tag::INITIAL]);
        // A concurrent write with a higher tag is relayed by the servers.
        let tw = Tag::new(7, ProcessId(60));
        let value = b"newer value".to_vec();
        let elements = code.encode(&value).unwrap();
        for rank in [4usize, 2, 0] {
            deliver(
                &mut r,
                READER,
                t(5),
                ProcessId(rank as u32),
                SodaMsg::CodedToReader {
                    op,
                    tag: tw,
                    element: elements[rank].clone(),
                },
            );
        }
        assert_eq!(r.completed_ops().len(), 1);
        assert_eq!(r.completed_ops()[0].tag, tw);
        assert_eq!(
            r.completed_ops()[0].value.as_deref(),
            Some(value.as_slice())
        );
    }

    #[test]
    fn stale_op_elements_are_ignored() {
        let cfg = config(5, 2);
        let code = cfg.code().clone();
        let mut r = ReaderProcess::new(cfg, READER);
        let op = start_read(&mut r);
        answer_get_phase(&mut r, op, &[Tag::INITIAL, Tag::INITIAL, Tag::INITIAL]);
        let stale_op = OpId::new(READER, 42);
        let elements = code.encode(b"x").unwrap();
        for (rank, element) in elements.iter().enumerate().take(3) {
            deliver(
                &mut r,
                READER,
                t(4),
                ProcessId(rank as u32),
                SodaMsg::CodedToReader {
                    op: stale_op,
                    tag: Tag::new(1, ProcessId(0)),
                    element: element.clone(),
                },
            );
        }
        assert!(r.completed_ops().is_empty());
    }

    #[test]
    fn queued_reads_run_back_to_back() {
        let cfg = config(3, 1); // k = 2, majority = 2
        let code = cfg.code().clone();
        let mut r = ReaderProcess::new(cfg, READER);
        deliver(&mut r, READER, t(1), ProcessId::ENV, SodaMsg::InvokeRead);
        deliver(&mut r, READER, t(1), ProcessId::ENV, SodaMsg::InvokeRead);
        let op1 = OpId::new(READER, 1);
        answer_get_phase(&mut r, op1, &[Tag::INITIAL, Tag::INITIAL]);
        let elements = code.encode(b"v").unwrap();
        for (rank, element) in elements.iter().enumerate().take(2) {
            deliver(
                &mut r,
                READER,
                t(3),
                ProcessId(rank as u32),
                SodaMsg::CodedToReader {
                    op: op1,
                    tag: Tag::INITIAL,
                    element: element.clone(),
                },
            );
        }
        assert_eq!(r.completed_ops().len(), 1);
        // The second read started automatically.
        assert_eq!(r.phase(), ReadPhase::Get);
        assert_eq!(r.current_op, Some(OpId::new(READER, 2)));
    }

    #[test]
    fn sodaerr_reader_waits_for_k_plus_2e_and_tolerates_corruption() {
        let layout = Layout::new((0..7u32).map(ProcessId).collect(), 2);
        let cfg = SodaConfig::soda_err(layout, 1); // k = 3, threshold 5
        let code = cfg.code().clone();
        let mut r = ReaderProcess::new(cfg, READER);
        let op = start_read(&mut r);
        answer_get_phase(
            &mut r,
            op,
            &[Tag::INITIAL, Tag::INITIAL, Tag::INITIAL, Tag::INITIAL],
        );
        assert_eq!(r.phase(), ReadPhase::Value);
        let tw = Tag::new(1, ProcessId(33));
        let value = b"guarded against silent disk corruption".to_vec();
        let mut elements = code.encode(&value).unwrap();
        // One of the five delivered elements is silently corrupted.
        for b in elements[3].data.make_mut() {
            *b ^= 0xA5;
        }
        for (rank, element) in elements.iter().enumerate().take(4) {
            deliver(
                &mut r,
                READER,
                t(4),
                ProcessId(rank as u32),
                SodaMsg::CodedToReader {
                    op,
                    tag: tw,
                    element: element.clone(),
                },
            );
            assert!(r.completed_ops().is_empty(), "needs k + 2e = 5 elements");
        }
        deliver(
            &mut r,
            READER,
            t(5),
            ProcessId(4),
            SodaMsg::CodedToReader {
                op,
                tag: tw,
                element: elements[4].clone(),
            },
        );
        assert_eq!(r.completed_ops().len(), 1);
        assert_eq!(
            r.completed_ops()[0].value.as_deref(),
            Some(value.as_slice())
        );
    }
}
