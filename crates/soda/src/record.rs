//! Records of completed client operations.
//!
//! Clients keep a log of every operation they completed, including invocation
//! and response times and the (tag, value) pair the paper associates with each
//! operation for the atomicity argument (Section V-A). The consistency checker
//! and the experiment harness consume these records.

use crate::messages::OpId;
use soda_protocol::Tag;
use soda_simnet::SimTime;

/// Whether an operation was a read or a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A write operation.
    Write,
    /// A read operation.
    Read,
}

impl OpKind {
    /// True for reads.
    pub fn is_read(&self) -> bool {
        matches!(self, OpKind::Read)
    }

    /// True for writes.
    pub fn is_write(&self) -> bool {
        matches!(self, OpKind::Write)
    }
}

/// A completed client operation.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// The operation id.
    pub op: OpId,
    /// Read or write.
    pub kind: OpKind,
    /// Simulated time of the invocation step.
    pub invoked_at: SimTime,
    /// Simulated time of the response step.
    pub completed_at: SimTime,
    /// The tag associated with the operation (`tag(π)` in the paper).
    pub tag: Tag,
    /// The value written (for writes) or returned (for reads).
    pub value: Option<Vec<u8>>,
}

impl OpRecord {
    /// Operation latency in ticks.
    pub fn latency(&self) -> u64 {
        self.completed_at.since(self.invoked_at)
    }
}

/// A write that was invoked but has not (yet) completed — because the
/// execution ended first, the writer crashed mid-operation, or the network
/// adversary starved it of responses.
///
/// Atomicity checking under faults needs these: a *completed* read may
/// legitimately return the value of an uncompleted write (the write then
/// linearizes at some point after its invocation), so the checker's history
/// must contain the pending write as an operation whose response never
/// happened. The tag is `None` while the writer is still in its `write-get`
/// phase — no server has seen the value yet, so no read can have observed it.
#[derive(Clone, Debug)]
pub struct PendingWrite {
    /// The operation id.
    pub op: OpId,
    /// Simulated time of the invocation step.
    pub invoked_at: SimTime,
    /// The tag the writer assigned, once the `write-put` phase started.
    pub tag: Option<Tag>,
    /// The value being written.
    pub value: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_simnet::ProcessId;

    #[test]
    fn kind_predicates() {
        assert!(OpKind::Read.is_read());
        assert!(!OpKind::Read.is_write());
        assert!(OpKind::Write.is_write());
    }

    #[test]
    fn latency_is_response_minus_invocation() {
        let rec = OpRecord {
            op: OpId::new(ProcessId(1), 1),
            kind: OpKind::Write,
            invoked_at: SimTime::from_ticks(10),
            completed_at: SimTime::from_ticks(35),
            tag: Tag::INITIAL,
            value: None,
        };
        assert_eq!(rec.latency(), 25);
    }
}
