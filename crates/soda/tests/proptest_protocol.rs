//! Property-based end-to-end tests of the SODA protocol: proptest generates
//! the workload shape (operation mix, timing, network delay bound, crash
//! schedule within the `f` budget) and every generated execution must satisfy
//! the protocol's guarantees — termination, atomicity-relevant invariants at
//! the storage layer, and bookkeeping cleanup.

use proptest::prelude::*;
use soda::harness::{ClusterConfig, SodaCluster};
use soda::OpKind;
use soda_simnet::{NetworkConfig, SimTime};

#[derive(Debug, Clone)]
struct WorkloadShape {
    seed: u64,
    delay: u64,
    writes: Vec<(u8, u64)>,  // (writer index, invoke time)
    reads: Vec<(u8, u64)>,   // (reader index, invoke time)
    crashes: Vec<(u8, u64)>, // (server rank mod n, crash time), truncated to f
}

fn shape() -> impl Strategy<Value = WorkloadShape> {
    (
        any::<u64>(),
        1u64..25,
        proptest::collection::vec((0u8..2, 0u64..200), 1..6),
        proptest::collection::vec((0u8..2, 0u64..200), 1..6),
        proptest::collection::vec((0u8..7, 0u64..150), 0..3),
    )
        .prop_map(|(seed, delay, writes, reads, crashes)| WorkloadShape {
            seed,
            delay,
            writes,
            reads,
            crashes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_generated_execution_terminates_and_is_atomic(shape in shape()) {
        let n = 7usize;
        let f = 2usize;
        let mut cluster = SodaCluster::build(
            ClusterConfig::new(n, f)
                .with_seed(shape.seed)
                .with_clients(2, 2)
                .with_network(NetworkConfig::uniform(shape.delay)),
        );
        // At most f distinct servers crash.
        let mut crashed = std::collections::BTreeSet::new();
        for (rank, at) in &shape.crashes {
            let rank = (*rank as usize) % n;
            if crashed.len() < f && crashed.insert(rank) {
                cluster.crash_server_at(SimTime::from_ticks(*at), rank);
            }
        }
        let writers = cluster.writers().to_vec();
        let readers = cluster.readers().to_vec();
        let mut expected_writes = 0usize;
        for (i, (w, at)) in shape.writes.iter().enumerate() {
            let writer = writers[*w as usize % writers.len()];
            cluster.invoke_write_at(
                SimTime::from_ticks(*at),
                writer,
                format!("prop-{i}").into_bytes(),
            );
            expected_writes += 1;
        }
        let mut expected_reads = 0usize;
        for (r, at) in &shape.reads {
            let reader = readers[*r as usize % readers.len()];
            cluster.invoke_read_at(SimTime::from_ticks(*at), reader);
            expected_reads += 1;
        }

        let outcome = cluster.run_to_quiescence();
        prop_assert!(!outcome.hit_event_cap, "execution must quiesce");

        // Liveness: every invoked operation completes (clients never crash in
        // this test and at most f servers do).
        let ops = cluster.completed_ops();
        prop_assert_eq!(ops.len(), expected_writes + expected_reads);

        // Atomicity of the history under the tag order.
        let history = soda_workload::convert::history_from_soda(&[], &ops);
        prop_assert!(history.check_atomicity().is_ok());

        // Storage invariant: every live server stores exactly one coded
        // element, whose tag is one of the completed writes' tags (or the
        // initial tag).
        let write_tags: std::collections::BTreeSet<_> = ops
            .iter()
            .filter(|o| o.kind == OpKind::Write)
            .map(|o| o.tag)
            .collect();
        for rank in 0..n {
            if crashed.contains(&rank) {
                continue;
            }
            let tag = cluster.server_state(rank).stored_tag();
            prop_assert!(
                tag.is_initial() || write_tags.contains(&tag),
                "server {rank} stores an unknown tag {tag:?}"
            );
        }

        // Cleanup: no *non-faulty* server keeps a reader registered once
        // everything quiesced (crashed servers may die holding a registration;
        // the paper's Theorem 5.5 only speaks about non-faulty servers).
        let live_registered: usize = (0..n)
            .filter(|rank| !crashed.contains(rank))
            .map(|rank| cluster.server_state(rank).registered_readers())
            .sum();
        prop_assert_eq!(live_registered, 0);
    }

    #[test]
    fn quiescent_servers_converge_when_no_reads_run(
        seed in any::<u64>(),
        delay in 1u64..20,
        num_writes in 1usize..5,
    ) {
        // With only writes, MD-VALUE uniformity forces every non-faulty server
        // to end up with the same (highest) tag.
        let mut cluster = SodaCluster::build(
            ClusterConfig::new(5, 2)
                .with_seed(seed)
                .with_network(NetworkConfig::uniform(delay)),
        );
        let w = cluster.writers()[0];
        for i in 0..num_writes {
            cluster.invoke_write(w, vec![i as u8; 64]);
        }
        cluster.run_to_quiescence();
        let tags: Vec<_> = (0..5).map(|r| cluster.server_state(r).stored_tag()).collect();
        prop_assert!(tags.windows(2).all(|p| p[0] == p[1]), "tags diverge: {tags:?}");
        let ops = cluster.completed_ops();
        prop_assert_eq!(ops.len(), num_writes);
        prop_assert_eq!(tags[0], ops.last().unwrap().tag);
    }
}
