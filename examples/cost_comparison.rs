//! Side-by-side cost comparison of ABD, CASGC and SODA on the same workload —
//! a miniature, single-`n` version of the paper's Table I, printed with the
//! paper's closed-form expressions next to the measured numbers. All three
//! protocols run through the same `RegisterCluster` facade and the same
//! generic scenario runner.
//!
//! Run with: `cargo run --example cost_comparison`

use soda_repro::soda_workload::experiments::{table1, table1_text};

fn main() {
    let n = 10;
    let delta_w = 3;
    println!(
        "== storage and communication costs at n = {n}, f = fmax, {delta_w} concurrent writes ==\n"
    );
    let rows = table1(&[n], delta_w, 8 * 1024, 7);
    println!("{}", table1_text(&rows));
    println!("Reading the table:");
    println!(" * ABD replicates: every cost is ~n.");
    println!(" * CASGC sends coded elements (~n/(n-2f) per op) but must provision storage for δ+1 versions.");
    println!(
        " * SODA stores exactly one coded element per server (n/(n-f) total) and pays an elastic"
    );
    println!("   read cost proportional to the concurrency the read actually experienced.");
}
