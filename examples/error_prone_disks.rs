//! SODAerr in action: commodity disks silently corrupt coded elements during
//! reads, and the `[n, n−f−2e]` code still returns the correct value.
//!
//! The example runs the same workload twice on a 9-server cluster where two
//! servers have bad disks:
//!
//! * with **SODAerr** (`e = 2`): every read decodes correctly;
//! * with **plain SODA** (`e = 0`), to show why the extra redundancy matters:
//!   a reader that happens to pick up a corrupted element decodes garbage (or
//!   has to be lucky enough to avoid the bad servers).
//!
//! Run with: `cargo run --example error_prone_disks`

use soda_repro::soda_registry::{ClusterBuilder, ProtocolKind};

fn run(kind: ProtocolKind, faulty: Vec<usize>, seed: u64) -> (usize, usize) {
    let mut cluster = ClusterBuilder::new(kind, 9, 2)
        .with_seed(seed)
        .with_faulty_disks(faulty)
        .build()
        .expect("valid parameters");
    let expected = b"checksummed by the code itself, not the disk".to_vec();
    cluster.invoke_write(0, expected.clone());
    cluster.run_to_quiescence();

    let mut correct = 0;
    let mut total = 0;
    for _ in 0..5 {
        cluster.invoke_read(0);
        cluster.run_to_quiescence();
    }
    for op in cluster.completed_ops().iter().filter(|o| o.kind.is_read()) {
        total += 1;
        if op.value.as_deref() == Some(expected.as_slice()) {
            correct += 1;
        }
    }
    (correct, total)
}

fn main() {
    println!("== SODAerr vs corrupted local disks (n = 9, f = 2, two bad-disk servers) ==\n");

    let (correct, total) = run(ProtocolKind::SodaErr { e: 2 }, vec![0, 4], 7);
    println!(
        "SODAerr (e = 2, k = n - f - 2e = 3): {correct}/{total} reads returned the correct value"
    );
    assert_eq!(correct, total, "SODAerr must mask the corrupted elements");

    let (correct_plain, total_plain) = run(ProtocolKind::Soda, vec![0, 4], 7);
    println!(
        "plain SODA (e = 0, k = n - f = 7):  {correct_plain}/{total_plain} reads returned the correct value (5 attempted)"
    );
    println!(
        "\nWith e = 2 the decoder gathers k + 2e = 7 elements and corrects up to 2 corrupted ones;\n\
         plain SODA has no slack, so a read whose k-element set includes a bad disk cannot decode."
    );
    if total_plain == 0 {
        println!(
            "(under plain SODA every read picked up a corrupted element, failed to decode and never completed)"
        );
    } else if correct_plain < total_plain {
        println!(
            "(observed {} corrupted read(s) under plain SODA, as expected)",
            total_plain - correct_plain
        );
    } else {
        println!("(this seed happened to avoid the bad disks under plain SODA — rerun with another seed to see failures)");
    }
}
