//! A sharded, erasure-coded key-value store built from SODA registers.
//!
//! The paper's model is a single atomic object; a practical store composes one
//! register per key (atomic objects compose). The `soda-store` crate now owns
//! that composition: `ShardedStore` places a byte-string keyspace onto shards
//! by consistent hashing, backs every key with its own register cluster built
//! from the owning shard's spec, and machine-checks per-key atomicity over the
//! store-wide history. This example drives a 4-shard mixed-protocol fleet
//! (SODA, SODAerr, ABD, CASGC) through the batched ticket API.
//!
//! Run with: `cargo run --example concurrent_kv_store`

use soda_repro::soda_registry::ProtocolKind;
use soda_repro::soda_store::{StoreBuilder, TicketStatus};

fn main() {
    println!("== concurrent erasure-coded KV store (ShardedStore, mixed fleet) ==");
    let mut store = StoreBuilder::new(4, ProtocolKind::Soda, 7, 3)
        .with_shard_kinds(vec![
            ProtocolKind::Soda,
            ProtocolKind::SodaErr { e: 1 },
            ProtocolKind::Abd,
            ProtocolKind::Casgc { gc: 2 },
        ])
        .with_clients_per_key(2, 2)
        .with_seed(1000)
        .build()
        .expect("valid parameters");

    let keys = [
        "user:1", "user:2", "cart:1", "cart:2", "inv:1", "inv:2", "cfg", "audit",
    ];

    // Four rounds of writes against every key, with reads queued in the same
    // batch so they observe genuine write/read concurrency, then one more
    // round of reads after a drain to pick up the settled values.
    let mut gets = Vec::new();
    for round in 0..4u64 {
        store.put_batch(keys.iter().map(|key| {
            (
                key.as_bytes().to_vec(),
                format!("{key}=v{round}").into_bytes(),
            )
        }));
        gets.extend(store.multi_get(keys.iter().map(|key| key.as_bytes().to_vec())));
    }
    let outcome = store.run_until_quiescent();
    assert!(!outcome.hit_event_cap, "every shard quiesced");
    assert_eq!(
        outcome.pending_tickets, 0,
        "fault-free run serves everything"
    );

    let final_reads = store.multi_get(keys.iter().map(|key| key.as_bytes().to_vec()));
    store.run_until_quiescent();

    store
        .check_per_key_atomicity()
        .unwrap_or_else(|violation| panic!("per-key atomicity violated: {violation}"));

    for (key, &ticket) in keys.iter().zip(&final_reads) {
        let status = store.poll(ticket);
        let TicketStatus::Done(done) = &status else {
            panic!("final read of {key} left pending");
        };
        println!(
            "key {key:>7}: shard {} ({}), latest = {:?}, read latency {} ticks",
            store.shard_of(key.as_bytes()),
            store.shard_spec(store.shard_of(key.as_bytes())).kind.name(),
            String::from_utf8_lossy(status.value().expect("written keys read back")),
            done.latency_ticks,
        );
    }

    let metrics = store.metrics();
    println!("---");
    for shard in &metrics.per_shard {
        println!(
            "shard {} ({:>7}): {} keys, {} puts, {} gets, {} messages",
            shard.shard,
            shard.protocol,
            shard.keys,
            shard.completed_puts,
            shard.completed_gets,
            shard.messages_sent
        );
    }
    println!(
        "total: {} operations across {} keys on {} shards, {} messages, every per-key history atomic",
        metrics.aggregate.completed_ops(),
        keys.len(),
        store.num_shards(),
        metrics.aggregate.messages_sent
    );
}
