//! A sharded, erasure-coded key-value store built from SODA registers.
//!
//! The paper's model is a single atomic object; a practical store composes one
//! register per key (atomic objects compose). This example runs 8 keys, each
//! backed by its own SODA register over the same 7-server layout, drives
//! concurrent writers and readers against every key, and machine-checks
//! atomicity of every per-key history.
//!
//! Run with: `cargo run -p soda-bench --example concurrent_kv_store`

use soda::harness::{ClusterConfig, SodaCluster};
use soda_simnet::SimTime;
use soda_workload::convert::history_from_soda;

fn main() {
    println!("== concurrent erasure-coded KV store (one SODA register per key) ==");
    let keys = ["user:1", "user:2", "cart:1", "cart:2", "inv:1", "inv:2", "cfg", "audit"];
    let mut total_ops = 0usize;
    let mut total_messages = 0u64;

    for (i, key) in keys.iter().enumerate() {
        // Each key gets its own register instance (own simulated cluster) with
        // 2 writers and 2 readers hammering it concurrently.
        let mut cluster = SodaCluster::build(
            ClusterConfig::new(7, 3)
                .with_seed(1000 + i as u64)
                .with_clients(2, 2),
        );
        let writers = cluster.writers().to_vec();
        let readers = cluster.readers().to_vec();

        // Interleave writes and reads at staggered times so reads observe
        // genuine concurrency.
        for round in 0..4u64 {
            for (w_idx, &w) in writers.iter().enumerate() {
                let value = format!("{key}=v{round}.{w_idx}").into_bytes();
                cluster.invoke_write_at(SimTime::from_ticks(round * 40 + w_idx as u64), w, value);
            }
            for (r_idx, &r) in readers.iter().enumerate() {
                cluster.invoke_read_at(SimTime::from_ticks(round * 40 + 15 + r_idx as u64), r);
            }
        }
        let outcome = cluster.run_to_quiescence();
        assert!(!outcome.hit_event_cap, "register for {key} quiesced");

        let ops = cluster.completed_ops();
        let history = history_from_soda(&[], &ops);
        history
            .check_atomicity()
            .unwrap_or_else(|violation| panic!("key {key} violated atomicity: {violation}"));
        total_ops += ops.len();
        total_messages += cluster.stats().messages_sent;
        println!(
            "key {key:>7}: {} ops ({} writes, {} reads), atomic ✓, {} messages",
            ops.len(),
            ops.iter().filter(|o| o.kind.is_write()).count(),
            ops.iter().filter(|o| o.kind.is_read()).count(),
            cluster.stats().messages_sent
        );
    }

    println!("---");
    println!("total: {total_ops} operations across {} keys, {total_messages} messages, every per-key history atomic", keys.len());
}
