//! A sharded, erasure-coded key-value store built from SODA registers.
//!
//! The paper's model is a single atomic object; a practical store composes one
//! register per key (atomic objects compose). This example runs 8 keys, each
//! backed by its own SODA register over the same 7-server layout, drives
//! concurrent writers and readers against every key through the
//! `RegisterCluster` facade, and machine-checks atomicity of every per-key
//! history.
//!
//! Run with: `cargo run --example concurrent_kv_store`

use soda_repro::soda_registry::{ClusterBuilder, ProtocolKind};
use soda_repro::soda_simnet::SimTime;

fn main() {
    println!("== concurrent erasure-coded KV store (one SODA register per key) ==");
    let keys = [
        "user:1", "user:2", "cart:1", "cart:2", "inv:1", "inv:2", "cfg", "audit",
    ];
    let mut total_ops = 0usize;
    let mut total_messages = 0u64;

    for (i, key) in keys.iter().enumerate() {
        // Each key gets its own register instance (own simulated cluster) with
        // 2 writers and 2 readers hammering it concurrently.
        let mut cluster = ClusterBuilder::new(ProtocolKind::Soda, 7, 3)
            .with_seed(1000 + i as u64)
            .with_clients(2, 2)
            .build()
            .expect("valid parameters");

        // Interleave writes and reads at staggered times so reads observe
        // genuine concurrency.
        for round in 0..4u64 {
            for writer in 0..2usize {
                let value = format!("{key}=v{round}.{writer}").into_bytes();
                cluster.invoke_write_at(
                    SimTime::from_ticks(round * 40 + writer as u64),
                    writer,
                    value,
                );
            }
            for reader in 0..2usize {
                cluster
                    .invoke_read_at(SimTime::from_ticks(round * 40 + 15 + reader as u64), reader);
            }
        }
        let outcome = cluster.run_to_quiescence();
        assert!(!outcome.hit_event_cap, "register for {key} quiesced");

        let ops = cluster.completed_ops();
        cluster
            .history(&[])
            .check_atomicity()
            .unwrap_or_else(|violation| panic!("key {key} violated atomicity: {violation}"));
        total_ops += ops.len();
        total_messages += cluster.stats().messages_sent;
        println!(
            "key {key:>7}: {} ops ({} writes, {} reads), atomic ✓, {} messages",
            ops.len(),
            ops.iter().filter(|o| o.kind.is_write()).count(),
            ops.iter().filter(|o| o.kind.is_read()).count(),
            cluster.stats().messages_sent
        );
    }

    println!("---");
    println!(
        "total: {total_ops} operations across {} keys, {total_messages} messages, every per-key history atomic",
        keys.len()
    );
}
