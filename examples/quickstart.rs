//! Quickstart: emulate an atomic register over 5 erasure-coded servers,
//! tolerate 2 crashes, write a value and read it back.
//!
//! Run with: `cargo run -p soda-bench --example quickstart`

use soda::harness::{ClusterConfig, SodaCluster};
use soda_simnet::SimTime;

fn main() {
    // A cluster of n = 5 simulated servers tolerating f = 2 crashes.
    // SODA therefore uses a [5, 3] MDS code: each server stores 1/3 of the
    // value, for a total storage cost of 5/3 instead of ABD's 5.
    let mut cluster = SodaCluster::build(ClusterConfig::new(5, 2).with_seed(2024));
    let writer = cluster.writers()[0];
    let reader = cluster.readers()[0];

    println!("== SODA quickstart ==");
    println!(
        "n = {}, f = {}, k = n - f = {}",
        cluster.soda_config().n(),
        cluster.soda_config().f(),
        cluster.soda_config().k()
    );

    // Write a value. The writer queries a majority for tags, then disperses
    // (tag, value) through the MD-VALUE primitive and waits for k acks.
    let value = b"the fox jumps over the erasure-coded register".to_vec();
    cluster.invoke_write(writer, value.clone());
    cluster.run_to_quiescence();

    // Crash two servers — the maximum SODA tolerates here.
    cluster.crash_server_at(SimTime::ZERO, 1);
    cluster.crash_server_at(SimTime::ZERO, 3);
    println!("crashed servers 1 and 3 (f = 2 tolerated)");

    // Read it back despite the crashes.
    cluster.invoke_read(reader);
    cluster.run_to_quiescence();

    let ops = cluster.completed_ops();
    let read = ops.iter().find(|op| op.kind.is_read()).expect("read completed");
    assert_eq!(read.value.as_deref(), Some(value.as_slice()));
    println!("read back {} bytes: {:?}...", value.len(), String::from_utf8_lossy(&value[..20]));

    // Storage accounting: each live server stores one coded element of size
    // |value| / k, so the total is ~ n/(n-f) times the value size.
    let stored = cluster.total_stored_bytes();
    println!(
        "total stored bytes = {stored} ({}x the value size; paper formula n/(n-f) = {:.2})",
        stored as f64 / value.len() as f64,
        5.0 / 3.0
    );
    println!(
        "messages exchanged = {}, value-data bytes on the wire = {}",
        cluster.stats().messages_sent,
        cluster.stats().data_bytes_sent
    );
    println!("ok");
}
