//! Quickstart: emulate an atomic register over 5 erasure-coded servers,
//! tolerate 2 crashes, write a value and read it back — all through the
//! protocol-agnostic `RegisterCluster` facade.
//!
//! Run with: `cargo run --example quickstart`

use soda_repro::soda_registry::{ClusterBuilder, ProtocolKind};
use soda_repro::soda_simnet::SimTime;

fn main() {
    // A cluster of n = 5 simulated servers tolerating f = 2 crashes.
    // SODA therefore uses a [5, 3] MDS code: each server stores 1/3 of the
    // value, for a total storage cost of 5/3 instead of ABD's 5.
    let mut cluster = ClusterBuilder::new(ProtocolKind::Soda, 5, 2)
        .with_seed(2024)
        .build()
        .expect("valid parameters");

    let desc = *cluster.descriptor();
    println!("== SODA quickstart ==");
    println!(
        "n = {}, f = {}, k = n - f = {}",
        desc.n,
        desc.f,
        desc.k().expect("SODA is a coded protocol")
    );

    // Write a value. The writer queries a majority for tags, then disperses
    // (tag, value) through the MD-VALUE primitive and waits for k acks.
    let value = b"the fox jumps over the erasure-coded register".to_vec();
    cluster.invoke_write(0, value.clone());
    cluster.run_to_quiescence();

    // Crash two servers — the maximum SODA tolerates here.
    cluster.crash_server_at(SimTime::ZERO, 1);
    cluster.crash_server_at(SimTime::ZERO, 3);
    println!("crashed servers 1 and 3 (f = 2 tolerated)");

    // Read it back despite the crashes.
    cluster.invoke_read(0);
    cluster.run_to_quiescence();

    let ops = cluster.completed_ops();
    let read = ops
        .iter()
        .find(|op| op.kind.is_read())
        .expect("read completed");
    assert_eq!(read.value.as_deref(), Some(value.as_slice()));
    println!(
        "read back {} bytes: {:?}...",
        value.len(),
        String::from_utf8_lossy(&value[..20])
    );

    // Storage accounting: each live server stores one coded element of size
    // |value| / k, so the total is ~ n/(n-f) times the value size.
    let stored = cluster.total_stored_bytes();
    println!(
        "total stored bytes = {stored} ({}x the value size; paper formula n/(n-f) = {:.2})",
        stored as f64 / value.len() as f64,
        desc.paper_storage_cost()
    );
    println!(
        "messages exchanged = {}, value-data bytes on the wire = {}",
        cluster.stats().messages_sent,
        cluster.stats().data_bytes_sent
    );

    // The same code drives any other protocol — swap the kind and rerun.
    let mut abd = ClusterBuilder::new(ProtocolKind::Abd, 5, 2)
        .with_seed(2024)
        .build()
        .expect("valid parameters");
    abd.invoke_write(0, value.clone());
    abd.run_to_quiescence();
    println!(
        "for comparison, ABD stores {} bytes for the same write ({}x)",
        abd.total_stored_bytes(),
        abd.total_stored_bytes() as f64 / value.len() as f64
    );
    println!("ok");
}
