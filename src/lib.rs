//! Umbrella crate for the SODA reproduction workspace.
//!
//! The interesting code lives in the `crates/` workspace members; this crate
//! only hosts the end-to-end examples in `examples/` and re-exports the
//! protocol-agnostic client facade so they (and downstream users) need a
//! single dependency:
//!
//! * [`soda_registry`] — the [`soda_registry::RegisterCluster`] trait and
//!   [`soda_registry::ClusterBuilder`], one client API over SODA, SODAerr,
//!   ABD, CAS and CASGC.
//! * [`soda_store`] — the sharded multi-object KV store layered over the
//!   register protocols ([`soda_store::ShardedStore`]).
//! * [`soda_workload`] — the shared measurement scenario and the experiment
//!   sweeps regenerating the paper's tables.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use soda_consistency;
pub use soda_registry;
pub use soda_simnet;
pub use soda_store;
pub use soda_workload;
